"""Shared, device-accounted SCC primitives.

The paper's framing is that every parallel SCC code — ECL-SCC, GPU-SCC,
iSpan, FB/FB-Trim, Hong, Multistep, coloring — is built from the same
handful of data-parallel building blocks.  This module is the single
implementation of those blocks; the nine baselines and the core
algorithms compose them instead of re-implementing their own loops:

* :func:`masked_bfs` / :func:`forward_reach` / :func:`backward_reach` —
  level-synchronous frontier reachability within an active mask
  (backward passes use the memoized reverse CSR on
  :class:`~repro.graph.csr.CSRGraph`, never a rebuilt transpose);
* :func:`trim1` / :func:`trim2` / :func:`trim3` — size-1/2/3 SCC
  peeling (McLendon, Yuede/iSpan);
* :func:`select_pivot` — max-degree / extremal-ID pivot selection with
  the per-formulation device charge;
* :func:`pivot_fb_step` — one forward/backward decomposition round from
  a single pivot (the giant-SCC phase of GPU-SCC/iSpan/Hong/Multistep);
* :func:`colored_fb_rounds` / :func:`colored_reach` — the coloring
  formulation of Forward-Backward (Barnat et al.);
* :func:`scc_edge_filter_mask` — the signature-mismatch edge filter
  (ECL-SCC Phase 3, shared with the distributed BSP code);
* :func:`normalize_labels_to_max` — max-member-ID label normalization,
  the library-wide output convention.

All device traffic is charged through :mod:`repro.engine.accounting`
and sized by the active :class:`~repro.engine.backend.ArrayBackend`, so
counters are comparable across algorithms by construction.  Primitives
accept an optional ``tracer``; when one is passed they emit
``primitive:*`` spans nested inside the caller's phase span (see
``docs/observability.md``).
"""

from __future__ import annotations

import numpy as np

from ..device.executor import VirtualDevice
from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..trace import NULL_TRACER, Tracer
from ..types import NO_VERTEX, VERTEX_DTYPE
from . import accounting as acct
from .backend import ArrayBackend, get_backend

__all__ = [
    "frontier_expand",
    "masked_bfs",
    "forward_reach",
    "backward_reach",
    "colored_fb_rounds",
    "colored_reach",
    "active_degrees",
    "trim1",
    "trim2",
    "trim3",
    "select_pivot",
    "pivot_fb_step",
    "scc_edge_filter_mask",
    "normalize_labels_to_max",
    "build_vertex_incidence",
    "incident_edges",
]


# ---------------------------------------------------------------------------
# label normalization
# ---------------------------------------------------------------------------

def normalize_labels_to_max(labels: np.ndarray) -> np.ndarray:
    """Map arbitrary SCC labels to the max vertex ID in each component.

    The library-wide output convention: two vertices share a label iff
    they share an SCC, and the label is the component's maximum member
    ID, making outputs of all algorithms directly ``np.array_equal``.
    """
    labels = np.asarray(labels, dtype=VERTEX_DTYPE)
    n = labels.size
    if n == 0:
        return labels.copy()
    _, dense = np.unique(labels, return_inverse=True)
    reps = np.full(int(dense.max()) + 1, -1, dtype=VERTEX_DTYPE)
    np.maximum.at(reps, dense, np.arange(n, dtype=VERTEX_DTYPE))
    return reps[dense]


# ---------------------------------------------------------------------------
# frontier reachability
# ---------------------------------------------------------------------------

def frontier_expand(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All out-neighbours of *frontier* (with duplicates)."""
    return get_backend(None).expand(graph, frontier)


def masked_bfs(
    graph: CSRGraph,
    sources: np.ndarray,
    active: np.ndarray,
    dev: VirtualDevice,
    *,
    serial_level_cost: int = 0,
    backend: "ArrayBackend | str | None" = None,
    tracer: Tracer = NULL_TRACER,
) -> "tuple[np.ndarray, int]":
    """Level-synchronous BFS within ``active``; returns (visited, levels).

    Each level costs one launch/barrier plus the touched edges; callers
    modelling CPU codes with tiny frontiers pass ``serial_level_cost`` to
    charge the per-level critical-path overhead.
    """
    be = get_backend(backend)
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    sources = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    sources = sources[active[sources]]
    visited[sources] = True
    frontier = np.unique(sources)
    levels = 0
    with tracer.span("primitive:reach", sources=int(sources.size)) as sp:
        while frontier.size:
            levels += 1
            nxt = be.expand(graph, frontier)
            # topology- or worklist-driven level kernel: scan the status
            # flags the backend sweeps, then expand the frontier's
            # adjacency (Barnat/Li formulation under the dense backend)
            acct.charge_frontier_level(
                dev,
                be,
                num_vertices=n,
                frontier_size=int(frontier.size),
                expanded_edges=int(nxt.size),
                serial_ops=serial_level_cost,
            )
            if nxt.size == 0:
                break
            nxt = nxt[active[nxt] & ~visited[nxt]]
            frontier = np.unique(nxt)
            visited[frontier] = True
        sp.set(levels=levels)
    return visited, levels


def forward_reach(
    graph: CSRGraph,
    sources: np.ndarray,
    active: np.ndarray,
    dev: VirtualDevice,
    **kwargs,
) -> "tuple[np.ndarray, int]":
    """Forward reachability closure from *sources* (see :func:`masked_bfs`)."""
    return masked_bfs(graph, sources, active, dev, **kwargs)


def backward_reach(
    graph: CSRGraph,
    sources: np.ndarray,
    active: np.ndarray,
    dev: VirtualDevice,
    **kwargs,
) -> "tuple[np.ndarray, int]":
    """Backward reachability closure from *sources*.

    Runs :func:`masked_bfs` on ``graph.transpose()`` — the reverse CSR
    is memoized on the graph, so repeated backward passes (every FB
    round, every re-trim) reuse one transpose build.
    """
    return masked_bfs(graph.transpose(), sources, active, dev, **kwargs)


# ---------------------------------------------------------------------------
# pivot selection
# ---------------------------------------------------------------------------

def select_pivot(
    graph: CSRGraph,
    active: np.ndarray,
    dev: VirtualDevice,
    *,
    strategy: str = "max-degree",
    charge: str = "serial",
    backend: "ArrayBackend | str | None" = None,
) -> int:
    """Choose a pivot among the active vertices.

    ``strategy``:

    * ``"max-degree"`` — highest total (in+out) degree, the hub pivot
      every giant-SCC phase uses;
    * ``"max-id"`` / ``"min-id"`` — extremal active vertex ID (the
      textbook FB pivots; max-ID makes labels max-normalized for free).

    ``charge`` names the device formulation: ``"serial"`` models a
    host-side scan (CPU codes), ``"atomic"`` a winning-concurrent-write
    kernel (GPU codes), ``"none"`` skips accounting (caller charges).
    """
    n = graph.num_vertices
    if strategy == "max-degree":
        deg = graph.out_degree() + graph.in_degree()
        deg = np.where(active, deg, -1)
        pivot = int(np.argmax(deg))
    elif strategy in ("max-id", "min-id"):
        act = np.flatnonzero(active)
        if act.size == 0:
            raise ConvergenceError("select_pivot called with no active vertices")
        pivot = int(act.max() if strategy == "max-id" else act.min())
    else:
        raise ValueError(f"unknown pivot strategy {strategy!r}")
    if charge == "serial":
        acct.charge_serial_scan(dev, n)
    elif charge == "atomic":
        acct.charge_winning_write(
            dev, get_backend(backend), num_vertices=n,
            candidates=int(np.count_nonzero(active)),
        )
    elif charge != "none":
        raise ValueError(f"unknown pivot charge {charge!r}")
    return pivot


def pivot_fb_step(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    pivot: int,
    *,
    serial_level_cost: int = 0,
    backend: "ArrayBackend | str | None" = None,
    tracer: Tracer = NULL_TRACER,
) -> np.ndarray:
    """One single-pivot Forward-Backward round (the giant-SCC phase).

    Computes forward and backward reach from *pivot* within ``active``,
    labels the intersection with its max member ID, deactivates it, and
    returns the SCC's boolean mask.  ``labels``/``active`` are updated
    in place; the closing vertex kernel (label assignment) is charged to
    the backend's sweep width.
    """
    be = get_backend(backend)
    n = graph.num_vertices
    p = np.asarray([pivot], dtype=VERTEX_DTYPE)
    fwd, _ = forward_reach(
        graph, p, active, dev,
        serial_level_cost=serial_level_cost, backend=be, tracer=tracer,
    )
    bwd, _ = backward_reach(
        graph, p, active, dev,
        serial_level_cost=serial_level_cost, backend=be, tracer=tracer,
    )
    scc = fwd & bwd & active
    scc_idx = np.flatnonzero(scc)
    if scc_idx.size:
        labels[scc_idx] = scc_idx.max()
        active[scc_idx] = False
    acct.charge_vertex_scan(
        dev, be, num_vertices=n, worklist_size=int(np.count_nonzero(active)),
        bytes_per_vertex=acct.PAIR_FLAG_BYTES,
    )
    if tracer.enabled:
        tracer.counter("scc-detected", size=int(scc_idx.size))
    return scc


# ---------------------------------------------------------------------------
# coloring Forward-Backward
# ---------------------------------------------------------------------------

def colored_fb_rounds(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    *,
    max_rounds: "int | None" = None,
    serial_level_cost: int = 0,
    backend: "ArrayBackend | str | None" = None,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """Run coloring-FB until every active vertex is labelled.

    ``labels`` is updated in place with the max-member-ID of each SCC
    found; ``active`` is cleared as vertices are assigned.  Returns the
    number of FB rounds (each internally costs its BFS levels).

    Pivot selection follows Barnat's "winning write": every vertex of a
    color writes its ID to the color's slot and the maximum wins — one
    launch, modelled by a segment-max here.
    """
    be = get_backend(backend)
    n = graph.num_vertices
    gt = graph.transpose()
    color = np.zeros(n, dtype=VERTEX_DTYPE)  # one initial partition
    rounds = 0
    bound = max_rounds or (n + 2)
    while True:
        act_idx = np.flatnonzero(active)
        if act_idx.size == 0:
            return rounds
        rounds += 1
        if rounds > bound:
            raise ConvergenceError("coloring FB exceeded its round bound")
        with tracer.span("primitive:colored-fb-round", active=int(act_idx.size)):
            # --- pivot per color: winning concurrent write (one launch) --
            col = color[act_idx]
            order = np.argsort(col, kind="stable")
            col_sorted = col[order]
            group_starts = np.flatnonzero(
                np.concatenate([[True], col_sorted[1:] != col_sorted[:-1]])
            )
            pivots = np.maximum.reduceat(act_idx[order], group_starts)
            acct.charge_winning_write(
                dev, be, num_vertices=act_idx.size, candidates=act_idx.size
            )
            # --- forward/backward reach from all pivots simultaneously ---
            fwd = colored_reach(
                graph, pivots, color, active, dev,
                serial_level_cost=serial_level_cost, backend=be,
            )
            bwd = colored_reach(
                gt, pivots, color, active, dev,
                serial_level_cost=serial_level_cost, backend=be,
            )
            scc = fwd & bwd & active
            # label each found SCC with its pivot's color-group max (the
            # pivot IS the max active ID of its color by construction)
            pivot_of_color = np.full(
                int(color[act_idx].max()) + 1, NO_VERTEX, dtype=VERTEX_DTYPE
            )
            pivot_of_color[col_sorted[group_starts]] = pivots
            scc_idx = np.flatnonzero(scc)
            labels[scc_idx] = pivot_of_color[color[scc_idx]]
            active[scc_idx] = False
            acct.charge_vertex_scan(
                dev, be, num_vertices=act_idx.size,
                worklist_size=act_idx.size,
                bytes_per_vertex=acct.PAIR_FLAG_BYTES,
            )
            # --- split colors: quadrant encoding then compaction --------
            still = np.flatnonzero(active)
            if still.size == 0:
                return rounds
            quad = 2 * fwd[still].astype(np.int64) + bwd[still].astype(np.int64)
            new_color = color[still] * 4 + quad
            _, dense = np.unique(new_color, return_inverse=True)
            color[still] = dense
            acct.charge_vertex_scan(
                dev, be, num_vertices=still.size,
                worklist_size=still.size,
                bytes_per_vertex=acct.PAIR_FLAG_BYTES,
            )


def colored_reach(
    graph: CSRGraph,
    pivots: np.ndarray,
    color: np.ndarray,
    active: np.ndarray,
    dev: VirtualDevice,
    *,
    serial_level_cost: int = 0,
    backend: "ArrayBackend | str | None" = None,
) -> np.ndarray:
    """Multi-source BFS where expansion stays within the source's color.

    Also the backward sweep of Orzan-style coloring SCC: run it on the
    (memoized) transpose with the color roots as pivots.
    """
    be = get_backend(backend)
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    visited[pivots] = True
    frontier = np.unique(pivots)
    while frontier.size:
        nxt, counts = be.expand_with_counts(graph, frontier)
        acct.charge_frontier_level(
            dev,
            be,
            num_vertices=n,
            frontier_size=int(frontier.size),
            expanded_edges=int(nxt.size),
            serial_ops=serial_level_cost,
        )
        if nxt.size == 0:
            break
        src_col = np.repeat(color[frontier], counts)
        ok = active[nxt] & ~visited[nxt] & (color[nxt] == src_col)
        frontier = np.unique(nxt[ok])
        visited[frontier] = True
    return visited


# ---------------------------------------------------------------------------
# trim peeling
# ---------------------------------------------------------------------------

def active_degrees(
    graph: CSRGraph, active: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """(in_deg, out_deg) counting only edges between active vertices."""
    src, dst = graph.edges()
    live = active[src] & active[dst]
    n = graph.num_vertices
    out_deg = np.bincount(src[live], minlength=n).astype(VERTEX_DTYPE)
    in_deg = np.bincount(dst[live], minlength=n).astype(VERTEX_DTYPE)
    return in_deg, out_deg


def trim1(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    *,
    max_rounds: "int | None" = None,
    backend: "ArrayBackend | str | None" = None,
    tracer: Tracer = NULL_TRACER,
) -> "tuple[int, int]":
    """Iterated Trim-1.  Returns ``(removed, rounds)``.

    Degree maintenance is decremental (the standard GPU formulation):
    active degrees are computed once, and removing a vertex decrements
    its neighbours' counters, so the total edge work is O(E) across all
    rounds.  What iterates is the per-round *vertex scan* — every round
    launches a kernel that checks the vertex flags the backend sweeps —
    which is exactly why trim-based codes pay ~DAG-depth launches on
    deep meshes under the topology-driven (dense) organization (§5.1.1).
    """
    be = get_backend(backend)
    n = graph.num_vertices
    removed_total = 0
    bound = max_rounds or (n + 2)
    in_deg, out_deg = active_degrees(graph, active)
    acct.charge_degree_pass(dev, edges=graph.num_edges)
    gt = graph.transpose()
    frontier = np.flatnonzero(active & ((in_deg == 0) | (out_deg == 0)))
    acct.charge_vertex_scan(
        dev, be, num_vertices=n, worklist_size=int(np.count_nonzero(active))
    )
    rounds = 1
    with tracer.span("primitive:trim1") as sp:
        while frontier.size:
            rounds += 1
            if rounds > bound:  # pragma: no cover - safety net
                raise RuntimeError("trim1 failed to converge")
            labels[frontier] = frontier  # a trivial SCC's max member is itself
            active[frontier] = False
            removed_total += frontier.size
            # decrement neighbour degrees along the removed vertices' edges
            fwd = be.expand(graph, frontier)
            bwd = be.expand(gt, frontier)
            np.subtract.at(in_deg, fwd, 1)
            np.subtract.at(out_deg, bwd, 1)
            # per-round kernel: scan the swept vertex flags + the decrements
            acct.charge_vertex_scan(
                dev, be, num_vertices=n, worklist_size=int(frontier.size)
            )
            acct.charge_degree_pass(dev, edges=int(fwd.size + bwd.size))
            cand = np.unique(np.concatenate([fwd, bwd]))
            cand = cand[active[cand]]
            frontier = cand[(in_deg[cand] <= 0) | (out_deg[cand] <= 0)]
        sp.set(removed=int(removed_total), rounds=rounds)
    return removed_total, rounds


def trim2(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    *,
    backend: "ArrayBackend | str | None" = None,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """One Trim-2 pass: remove isolated 2-cycles.  Returns removals.

    A pair (u, v) qualifies when u <-> v and neither vertex has any other
    active in- or out-edge (Fig. 2b of the paper).
    """
    be = get_backend(backend)
    in_deg, out_deg = active_degrees(graph, active)
    src, dst = graph.edges()
    live = active[src] & active[dst]
    s, d = src[live], dst[live]
    acct.charge_degree_pass(
        dev, edges=graph.num_edges, bytes_per_edge=acct.ADJACENCY_EDGE_BYTES
    )
    # candidate endpoints: degree exactly 1 in both directions
    cand = active & (in_deg == 1) & (out_deg == 1)
    pick = cand[s] & cand[d]
    s2, d2 = s[pick], d[pick]
    if s2.size == 0:
        return 0
    # reciprocal test via edge-key membership
    n = max(graph.num_vertices, 1)
    keys = s2 * np.int64(n) + d2
    rev = d2 * np.int64(n) + s2
    recip = np.isin(rev, keys, assume_unique=False)
    u, v = s2[recip], d2[recip]
    # each pair appears as both (u, v) and (v, u); keep one orientation
    once = u < v
    u, v = u[once], v[once]
    if u.size == 0:
        return 0
    ncand = int(cand.sum())
    acct.charge_vertex_scan(
        dev, be, num_vertices=ncand, worklist_size=ncand,
        bytes_per_vertex=acct.PAIR_FLAG_BYTES,
    )
    pair_label = np.maximum(u, v)
    labels[u] = pair_label
    labels[v] = pair_label
    active[u] = False
    active[v] = False
    if tracer.enabled:
        tracer.counter("primitive:trim2-removed", int(2 * u.size))
    return int(u.size)


def trim3(
    graph: CSRGraph,
    active: np.ndarray,
    labels: np.ndarray,
    dev: VirtualDevice,
    *,
    backend: "ArrayBackend | str | None" = None,
    tracer: Tracer = NULL_TRACER,
) -> int:
    """One Trim-3 pass: remove isolated size-3 SCCs (Yuede's 5 patterns).

    There are exactly five strongly connected 3-vertex digraphs up to
    isomorphism — the plain 3-cycle, the 3-cycle with one, two, or three
    reverse chords, and the bidirectional path — matching the five
    patterns of the iSpan paper.  A triple qualifies when it induces one
    of them *and* none of its members has any other active edge.

    Detection: every qualifying triple contains at least one member
    adjacent to both others (the middle of a bidirectional path, or any
    vertex of a 3-cycle), so triples are enumerated from vertices with
    exactly two distinct active neighbours, then validated for closure
    (no external edges) and strong connectivity (on 3 vertices: every
    member has an internal in- and out-edge).  Returns vertices removed.
    """
    be = get_backend(backend)
    n = graph.num_vertices
    src, dst = graph.edges()
    live = active[src] & active[dst] & (src != dst)
    s, d = src[live], dst[live]
    acct.charge_degree_pass(
        dev, edges=graph.num_edges, bytes_per_edge=acct.ADJACENCY_EDGE_BYTES
    )
    if s.size == 0:
        return 0
    # distinct undirected neighbour pairs (v, w), v != w, both active
    big = np.int64(max(n, 1))
    und = np.concatenate([s * big + d, d * big + s])
    und = np.unique(und)
    v = und // big
    w = und % big
    # vertices with exactly two distinct neighbours seed candidate triples
    deg = np.bincount(v, minlength=n)
    seeds = np.flatnonzero(deg == 2)
    if seeds.size == 0:
        return 0
    order = np.argsort(v, kind="stable")
    starts = np.searchsorted(v[order], seeds)
    n1 = w[order][starts]
    n2 = w[order][starts + 1]
    triple = np.sort(np.stack([seeds, n1, n2], axis=1), axis=1)
    triple = np.unique(triple, axis=0)
    a, b, c = triple[:, 0], triple[:, 1], triple[:, 2]
    ok = (a != b) & (b != c)
    a, b, c = a[ok], b[ok], c[ok]
    if a.size == 0:
        return 0
    # closure: each member's distinct-neighbour set lies inside the triple
    # (deg <= 2 plus both neighbours being members implies containment)
    dir_keys = np.unique(s * big + d)

    def has_edge(x, y):
        return np.isin(x * big + y, dir_keys)

    e = {}
    for name, (x, y) in {
        "ab": (a, b), "ba": (b, a), "bc": (b, c),
        "cb": (c, b), "ac": (a, c), "ca": (c, a),
    }.items():
        e[name] = has_edge(x, y)
    closed = (deg[a] <= 2) & (deg[b] <= 2) & (deg[c] <= 2)
    # neighbours of each member must be members: count internal undirected
    # adjacencies per member and compare with its distinct degree
    adj_a = (e["ab"] | e["ba"]).astype(np.int64) + (e["ac"] | e["ca"]).astype(np.int64)
    adj_b = (e["ab"] | e["ba"]).astype(np.int64) + (e["bc"] | e["cb"]).astype(np.int64)
    adj_c = (e["ac"] | e["ca"]).astype(np.int64) + (e["bc"] | e["cb"]).astype(np.int64)
    closed &= (adj_a == deg[a]) & (adj_b == deg[b]) & (adj_c == deg[c])
    # strong connectivity on 3 vertices: internal in- and out-degree >= 1
    out_a, in_a = e["ab"] | e["ac"], e["ba"] | e["ca"]
    out_b, in_b = e["ba"] | e["bc"], e["ab"] | e["cb"]
    out_c, in_c = e["ca"] | e["cb"], e["ac"] | e["bc"]
    sc = out_a & in_a & out_b & in_b & out_c & in_c
    pick = closed & sc
    if not pick.any():
        return 0
    a, b, c = a[pick], b[pick], c[pick]
    label = np.maximum(np.maximum(a, b), c)
    for arr in (a, b, c):
        labels[arr] = label
        active[arr] = False
    acct.charge_vertex_scan(
        dev, be, num_vertices=int(seeds.size), worklist_size=int(seeds.size),
        bytes_per_vertex=acct.PAIR_FLAG_BYTES,
    )
    if tracer.enabled:
        tracer.counter("primitive:trim3-removed", int(3 * a.size))
    return int(3 * a.size)


# ---------------------------------------------------------------------------
# edge filtering
# ---------------------------------------------------------------------------

def scc_edge_filter_mask(
    sig_in: np.ndarray,
    sig_out: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    drop_completed: bool = True,
) -> np.ndarray:
    """Keep-mask of the signature-mismatch edge filter (Alg. 1 l. 15-19).

    An edge (u -> v) survives iff both signature pairs match — a
    mismatch proves the endpoints lie in different SCCs, so dropping is
    always safe.  With ``drop_completed`` the filter additionally drops
    edges whose source is already completed (``in == out``): such an
    edge lies inside a detected SCC and is dead weight (the paper's
    SCC-edge-removal optimization).  Shared by ECL-SCC Phase 3, the
    minmax variant, and the distributed BSP filter.
    """
    keep = (sig_in[src] == sig_in[dst]) & (sig_out[src] == sig_out[dst])
    if drop_completed:
        keep &= sig_in[src] != sig_out[src]
    return keep


# ---------------------------------------------------------------------------
# vertex incidence (frontier Phase-2 engine)
# ---------------------------------------------------------------------------

def build_vertex_incidence(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """CSR-style incidence index: vertex -> ids of edges touching it.

    Each edge id appears once under its source and once under its
    destination (a self-loop appears twice), so gathering a vertex
    frontier's buckets yields every edge a signature change at those
    vertices could re-relax.  Returns ``(indptr, edge_ids)`` with
    ``indptr`` of length ``num_vertices + 1``.  Built once per Phase-3
    compaction by the frontier engine (charged by the caller as part of
    the compaction pass).
    """
    endpoints = np.concatenate([src, dst])
    eids = np.concatenate([np.arange(src.size), np.arange(dst.size)])
    order = np.argsort(endpoints, kind="stable")
    counts = np.bincount(endpoints, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, eids[order]


def incident_edges(
    indptr: np.ndarray,
    edge_ids: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """Unique ids of edges incident to the *frontier* vertices.

    The frontier engine's per-round gather: expand each frontier
    vertex's incidence bucket and deduplicate (an edge whose endpoints
    are both in the frontier is relaxed once, not twice).
    """
    if frontier.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(indptr[frontier], counts)
    ids = np.arange(total, dtype=np.int64)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.unique(edge_ids[offsets + (ids - resets)])
