"""Adaptive per-round policy selection for the ``adaptive`` engine.

The :class:`AdaptiveScheduler` closes the loop the profiling layer
(:mod:`repro.profile`) opened: the same cost-model arithmetic that
attributes seconds to finished launches is used *prospectively* to pick
the next round's :class:`~repro.engine.policy.PropagationPolicy`.  Each
round it

1. pays for a density scan (one incidence-degree gather over the
   frontier, :func:`~repro.engine.accounting.charge_scheduler_scan` — the
   decision itself is device-accounted work, not free), unless the run
   has become launch-overhead-bound, in which case the scan is skipped
   and the frontier policy is locked in (``scheduler:lock``);
2. forecasts each candidate policy's round seconds from the frontier
   size, the incidence-degree sum, and the worklist size
   (:meth:`~repro.engine.policy.PropagationPolicy.round_cost`);
3. picks the cheapest (ties break toward the earlier policy in the
   configured order), records a :class:`PolicyDecision`, and emits a
   ``scheduler:pick`` counter event.

Determinism: every input of a decision is *backend- and
tracer-invariant*.  The running launch/bandwidth tallies are fed by
:meth:`note_launches` (per-launch latency and explicit drain blocks —
never the backend-swept compaction traffic) and :meth:`account_round`
(counter deltas captured around ``run_round`` only, whose charges contain
no backend-swept component), and the scan charge itself bypasses the
backend sweep.  Decisions therefore replay bit-identically across the
``dense``/``frontier`` backends and traced/untraced runs — golden-tested
in ``tests/test_policy_scheduler.py``.

Fault tolerance: recovery re-propagation after a restore always forces
the frontier policy without scanning or updating the tallies (the
recovery frontier is the regressed-signature set, for which the frontier
policy is the only sound shape at that cost), and the decision is
flagged ``recovery=True`` so golden comparisons can exclude it; the
scheduler's tallies and decision log are checkpointed
(:meth:`state_snapshot` / :meth:`restore_state`) so a crash-restore
replays the exact decision sequence a fault-free run makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from ..device.costmodel import (
    BLOCK_DISPATCH_NS,
    cost_terms,
    working_set_of_graph,
)
from ..device.spec import DeviceSpec
from ..trace import NULL_TRACER, Tracer
from .accounting import charge_scheduler_scan
from .policy import DEFAULT_POLICIES, PropagationPolicy, RoundStats, get_policy

__all__ = [
    "AdaptiveScheduler",
    "PolicyDecision",
    "DENSITY_THRESHOLD",
    "LAUNCH_BOUND_RATIO",
]

#: frontier-degree-mass / worklist-size ratio below which the frontier
#: policy's forecast beats the dense sweep's on the shipped byte
#: conventions (the closed form is derived in
#: ``docs/performance_model.md``: dense moves ~101.3 m/B seconds,
#: frontier ~133.3 D/B, so frontier wins while D/m < 101.3/133.3).  The
#: scheduler itself compares the full forecasts rather than this ratio;
#: the constant is exported for the distributed per-rank selection and
#: for documentation/tests.
DENSITY_THRESHOLD = 0.76

#: once launch latency accounts for this fraction of the run's modelled
#: propagation seconds, the run is launch-overhead-bound: round shape no
#: longer moves the total, so the scheduler stops paying for density
#: scans and locks the frontier policy (smallest traffic, and the drain
#: structure already amortizes its launches).
LAUNCH_BOUND_RATIO = 0.5


@dataclass(frozen=True)
class PolicyDecision:
    """One per-round scheduling decision (the auditable record)."""

    outer: int
    round: int
    policy: str
    frontier_size: int
    degree_sum: int
    density: float
    avg_degree: float
    launch_ratio: float
    #: False when the decision skipped the density scan (lock mode or
    #: recovery) — no scan charge was paid for it.
    scanned: bool
    #: True for forced-frontier decisions during fault recovery; golden
    #: decision-log comparisons exclude these.
    recovery: bool = False

    def to_dict(self) -> "dict[str, object]":
        return {
            "outer": self.outer,
            "round": self.round,
            "policy": self.policy,
            "frontier_size": self.frontier_size,
            "degree_sum": self.degree_sum,
            "density": self.density,
            "avg_degree": self.avg_degree,
            "launch_ratio": self.launch_ratio,
            "scanned": self.scanned,
            "recovery": self.recovery,
        }


class AdaptiveScheduler:
    """Per-round policy selection from frontier statistics and tallies."""

    def __init__(
        self,
        spec: DeviceSpec,
        *,
        num_vertices: int,
        num_edges: int,
        policies: "tuple[str, ...]" = DEFAULT_POLICIES,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.spec = spec
        self.num_vertices = int(num_vertices)
        self.working_set = working_set_of_graph(num_vertices, num_edges)
        self.policies: "tuple[PropagationPolicy, ...]" = tuple(
            get_policy(name) for name in policies
        )
        self.tracer = tracer
        #: every decision of the run, in order (recovery ones included).
        self.decisions: "list[PolicyDecision]" = []
        # running launch-overhead / bandwidth tallies (modelled seconds)
        self._launch_s = 0.0
        self._round_s = 0.0

    # -- tally feeds ---------------------------------------------------
    @property
    def launch_ratio(self) -> float:
        """Fraction of tallied propagation seconds spent on launches."""
        total = self._launch_s + self._round_s
        return self._launch_s / total if total > 0.0 else 0.0

    def note_launches(self, count: int, *, blocks: int = 0) -> None:
        """Tally *count* kernel launches (+ *blocks* dispatches) of latency.

        Fed by the driver for the structural launches the drain pays
        (compaction, the persistent drain itself) — deliberately from the
        launch *counts*, never from backend-swept traffic, so the tally
        is backend-invariant.
        """
        self._launch_s += (
            count * self.spec.launch_us * 1e-6
            + blocks * BLOCK_DISPATCH_NS * 1e-9
        )

    def account_round(
        self, before: "dict[str, int]", after: "dict[str, int]"
    ) -> None:
        """Tally the bandwidth seconds of one finished round.

        *before*/*after* are counter snapshots captured around the
        policy's ``run_round`` — round charges are in-kernel work with no
        backend-swept component, so the deltas (and hence the tallies and
        every later decision) are identical across backends.
        """
        delta = SimpleNamespace(
            **{key: after[key] - before[key] for key in before}
        )
        terms = cost_terms(
            delta, self.spec, working_set_bytes=self.working_set
        )
        self._round_s += terms["irregular"] + terms["streamed"] + terms["atomic"]

    # -- the decision --------------------------------------------------
    def decide(
        self,
        dev,
        *,
        frontier: np.ndarray,
        indptr: np.ndarray,
        worklist_edges: int,
        touched: int,
        num_vertices: int,
        compress: bool,
        outer: int,
        round_no: int,
        recovery: bool = False,
    ) -> PropagationPolicy:
        """Pick the policy for one round; charge and record the decision."""
        if recovery:
            decision = PolicyDecision(
                outer=outer,
                round=round_no,
                policy="frontier",
                frontier_size=int(frontier.size),
                degree_sum=0,
                density=0.0,
                avg_degree=0.0,
                launch_ratio=self.launch_ratio,
                scanned=False,
                recovery=True,
            )
            picked = get_policy("frontier")
        elif (
            # lock only on *evidence*: before the first accounted round
            # the tallies are launch-only and the ratio is degenerately
            # 1.0 — that must not suppress the scan on bandwidth-bound
            # graphs whose very first round is the most expensive one
            self._round_s > 0.0
            and self.launch_ratio >= LAUNCH_BOUND_RATIO
        ):
            # launch-overhead-bound: round shape cannot move the total;
            # skip the scan and lock the cheapest-traffic policy.
            self.tracer.counter(
                "scheduler:lock", outer=outer, round=round_no
            )
            decision = PolicyDecision(
                outer=outer,
                round=round_no,
                policy="frontier",
                frontier_size=int(frontier.size),
                degree_sum=0,
                density=0.0,
                avg_degree=0.0,
                launch_ratio=self.launch_ratio,
                scanned=False,
            )
            picked = get_policy("frontier")
        else:
            degree_sum = int(
                (indptr[frontier + 1] - indptr[frontier]).sum()
            )
            charge_scheduler_scan(dev, frontier_size=frontier.size)
            stats = RoundStats(
                frontier_size=int(frontier.size),
                degree_sum=degree_sum,
                worklist_edges=int(worklist_edges),
                touched=int(touched),
                num_vertices=int(num_vertices),
                compress=compress,
            )
            picked = min(
                self.policies,
                key=lambda p: p.round_cost(
                    stats, self.spec, self.working_set
                ),
            )
            decision = PolicyDecision(
                outer=outer,
                round=round_no,
                policy=picked.name,
                frontier_size=stats.frontier_size,
                degree_sum=stats.degree_sum,
                density=stats.density,
                avg_degree=stats.avg_degree,
                launch_ratio=self.launch_ratio,
                scanned=True,
            )
        self.decisions.append(decision)
        self.tracer.counter(
            "scheduler:pick",
            policy=decision.policy,
            outer=outer,
            round=round_no,
            frontier=decision.frontier_size,
            recovery=recovery,
        )
        return picked

    # -- checkpoint integration ----------------------------------------
    def state_snapshot(self) -> "dict[str, object]":
        """Checkpointable scheduler state (tallies + decision-log length).

        The decision log is part of the checkpoint so a crash-restore
        replays the exact decision sequence of a fault-free run: restoring
        truncates decisions made after the checkpoint, and the restored
        tallies make every later ``launch_ratio`` read identical.
        """
        return {
            "launch_s": self._launch_s,
            "round_s": self._round_s,
            "decisions": len(self.decisions),
        }

    def restore_state(self, snapshot: "dict[str, object]") -> None:
        """Rewind to a :meth:`state_snapshot` (inverse of checkpointing)."""
        self._launch_s = float(snapshot["launch_s"])  # type: ignore[arg-type]
        self._round_s = float(snapshot["round_s"])  # type: ignore[arg-type]
        del self.decisions[int(snapshot["decisions"]) :]  # type: ignore[call-overload]
