"""Pluggable per-round propagation policies for ECL-SCC's Phase 2.

Historically the dense sweep and the frontier worklist were whole-run
*engines*: the driver picked one organization up front and every
propagation round of the run used it.  This module extracts the round
step itself — consume the current frontier/invalidated state, raise
signatures, emit device charges, return the changed-vertex set — into a
:class:`PropagationPolicy` so the organization can be chosen *per round*
(:mod:`repro.engine.scheduler`).

Two axes describe a policy:

* **coverage** — a dense policy relaxes every worklist edge; a frontier
  policy relaxes only edges incident to the current frontier.
* **direction** — a *pull* policy computes per-vertex segment maxima
  over grouped candidate edges (gather + ``np.maximum.reduceat``, no
  write races); a *push* policy scatters candidates from the frontier
  with racy plain-write maxima (the paper's §3.4 argument: monotone
  max-propagation tolerates lost updates).

The registry ships three policies: ``dense`` (pull, the sync engine's
round), ``frontier`` (push, the frontier engine's round — the *same*
code path :func:`~repro.core.propagation.propagate_frontier` drains
through, so the two can never diverge in labels or charges), and
``dense-push`` (push over all worklist edges) proving the direction axis
is a registration choice, not a driver special case.

Correctness of mixing policies across rounds: every policy performs a
monotone step of the same max-propagation join semilattice, a round that
changes nothing certifies that no plain relaxation can make progress
(edges not incident to a changed vertex relax to values they already
hold), and a monotone iteration's fixed point is schedule-independent —
so any per-round policy sequence converges to the *same* signatures,
and labels stay bit-identical to the dense engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.costmodel import STREAM_EFF, effective_bandwidth
from ..device.spec import DeviceSpec
from ..errors import AlgorithmError
from .accounting import (
    ADJACENCY_EDGE_BYTES,
    PAIR_FLAG_BYTES,
    SIGNATURE_PAIR_BYTES,
    STATUS_FLAG_BYTES,
    charge_dense_round,
    charge_frontier_round,
)
from .primitives import incident_edges

__all__ = [
    "RoundState",
    "RoundStats",
    "PropagationPolicy",
    "DensePullPolicy",
    "DensePushPolicy",
    "FrontierPushPolicy",
    "register_policy",
    "get_policy",
    "policy_names",
    "DEFAULT_POLICIES",
]


@dataclass
class RoundState:
    """Everything one propagation round consumes (duck-typed core state).

    The policy layer deliberately never imports :mod:`repro.core` (the
    dependency arrow points core -> engine); the driver hands the live
    core objects over through this bundle and the policies use only
    their array surface.
    """

    #: Signatures-like object exposing ``sig_in``/``sig_out`` arrays.
    sigs: object
    #: EdgeGrouping-like object over the current edge worklist
    #: (``src``/``dst``/``touched``/``num_edges``/``relax_masked``).
    grouping: object
    #: vertex-incidence CSR of the worklist (each edge under both
    #: endpoints), from
    #: :func:`~repro.engine.primitives.build_vertex_incidence`.
    indptr: np.ndarray
    edge_ids: np.ndarray
    #: sorted unique ids of vertices whose signatures changed last round.
    frontier: np.ndarray
    num_vertices: int
    #: apply the paper's path-compression refinements this round.
    compress: bool


@dataclass(frozen=True)
class RoundStats:
    """Backend-invariant inputs of one scheduling decision.

    ``degree_sum`` is the incidence-degree sum over the frontier; the
    incidence structure lists every edge under both endpoints, so it
    overcounts the unique incident edges a push round actually gathers
    by at most 2x — a deliberate conservative bias toward the dense
    policy (documented in ``docs/performance_model.md``).
    """

    frontier_size: int
    degree_sum: int
    worklist_edges: int
    touched: int
    num_vertices: int
    compress: bool

    @property
    def density(self) -> float:
        """Frontier-incident degree mass relative to the worklist size."""
        return self.degree_sum / max(1, self.worklist_edges)

    @property
    def avg_degree(self) -> float:
        return self.degree_sum / max(1, self.frontier_size)


def _scatter_round(state: RoundState, idx: np.ndarray) -> "tuple[np.ndarray, int]":
    """Shared push-relaxation body over edge subset *idx*.

    Scatter-max both signature directions with racy plain writes, then
    apply pointer doubling and signature feedback restricted to the
    touched endpoints.  Returns ``(changed_v, compress_work)``.
    """
    sigs = state.sigs
    sig_in, sig_out = sigs.sig_in, sigs.sig_out
    src, dst = state.grouping.src, state.grouping.dst
    changed_v = np.zeros(state.num_vertices, dtype=bool)
    s, d = src[idx], dst[idx]
    cand = sig_out[d]
    if state.compress:
        cand = sig_out[cand]
    before = sig_out[s]
    np.maximum.at(sig_out, s, cand)
    w = s[sig_out[s] > before]
    changed_v[w] = True
    cand = sig_in[s]
    if state.compress:
        cand = sig_in[cand]
    before = sig_in[d]
    np.maximum.at(sig_in, d, cand)
    w = d[sig_in[d] > before]
    changed_v[w] = True
    compress_work = 0
    if state.compress and idx.size:
        e = np.concatenate([s, d])
        # pointer doubling restricted to the active endpoints
        ji = sig_in[sig_in[e]]
        upd = ji > sig_in[e]
        sig_in[e[upd]] = ji[upd]
        changed_v[e[upd]] = True
        jo = sig_out[sig_out[e]]
        upd = jo > sig_out[e]
        sig_out[e[upd]] = jo[upd]
        changed_v[e[upd]] = True
        # feedback restricted to the active endpoints
        in_t = sig_in[e]
        out_t = sig_out[e]
        before = sig_in[out_t]
        np.maximum.at(sig_in, out_t, in_t)
        upd = sig_in[out_t] > before
        changed_v[out_t[upd]] = True
        before = sig_out[in_t]
        np.maximum.at(sig_out, in_t, out_t)
        upd = sig_out[in_t] > before
        changed_v[in_t[upd]] = True
        compress_work = 2 * e.size
    return changed_v, compress_work


class PropagationPolicy:
    """One round-step strategy; stateless, registered by name."""

    #: registry key.
    name: str = ""
    #: relaxation direction axis: ``"pull"`` (segment max) or ``"push"``
    #: (scatter max).
    direction: str = ""

    def run_round(self, state: RoundState, dev) -> np.ndarray:
        """Run one relaxation round; charge *dev*; return changed mask."""
        raise NotImplementedError

    def round_cost(
        self, stats: RoundStats, spec: DeviceSpec, working_set_bytes: float
    ) -> float:
        """Modelled seconds one round under *stats* would cost.

        Uses the same bandwidth arithmetic as the cost model
        (:func:`~repro.device.costmodel.effective_bandwidth`,
        ``STREAM_EFF``) on the same byte conventions the policy's charge
        helper applies, so the scheduler's forecasts and the profiler's
        attributions share one vocabulary.  Next-frontier enqueue
        atomics are identical across policies (same changed set) and are
        left out of the comparison.
        """
        raise NotImplementedError


class DensePullPolicy(PropagationPolicy):
    """Full-worklist Jacobi segment-max round (the sync engine's step)."""

    name = "dense"
    direction = "pull"

    def run_round(self, state: RoundState, dev) -> np.ndarray:
        sigs = state.sigs
        g = state.grouping
        n = state.num_vertices
        changed_v = g.relax_masked(sigs, None, n, compress=state.compress)
        compress_work = 0
        if state.compress:
            sig_in, sig_out = sigs.sig_in, sigs.sig_out
            # pointer doubling (the in[in]/out[out] reads of §3.3)
            ji = sig_in[sig_in]
            jo = sig_out[sig_out]
            changed_v |= ji != sig_in
            changed_v |= jo != sig_out
            sigs.sig_in, sigs.sig_out = sig_in, sig_out = ji, jo
            # signature feedback over the worklist endpoints
            touched = g.touched
            in_t = sig_in[touched]
            out_t = sig_out[touched]
            before = sig_in[out_t]
            np.maximum.at(sig_in, out_t, in_t)
            upd = sig_in[out_t] > before
            changed_v[out_t[upd]] = True
            before = sig_out[in_t]
            np.maximum.at(sig_out, in_t, out_t)
            upd = sig_out[in_t] > before
            changed_v[in_t[upd]] = True
            compress_work = n + touched.size
        enqueues = int(np.count_nonzero(changed_v))
        charge_dense_round(
            dev, edges=g.num_edges, vertices=compress_work, enqueues=enqueues
        )
        return changed_v

    def round_cost(
        self, stats: RoundStats, spec: DeviceSpec, working_set_bytes: float
    ) -> float:
        bw_irr = effective_bandwidth(spec, working_set_bytes)
        bw_str = spec.mem_bw_gbs * 1e9 * STREAM_EFF
        m = stats.worklist_edges
        seconds = m * ADJACENCY_EDGE_BYTES / bw_irr + m * PAIR_FLAG_BYTES / bw_str
        if stats.compress:
            seconds += (
                (stats.num_vertices + stats.touched)
                * SIGNATURE_PAIR_BYTES
                / bw_irr
            )
        return seconds


class FrontierPushPolicy(PropagationPolicy):
    """Frontier-incident scatter-max round (the frontier engine's step)."""

    name = "frontier"
    direction = "push"

    def _select_edges(self, state: RoundState) -> np.ndarray:
        return incident_edges(state.indptr, state.edge_ids, state.frontier)

    def run_round(self, state: RoundState, dev) -> np.ndarray:
        idx = self._select_edges(state)
        changed_v, compress_work = _scatter_round(state, idx)
        enqueues = int(np.count_nonzero(changed_v))
        charge_frontier_round(
            dev,
            edges=idx.size,
            frontier_size=state.frontier.size,
            vertices=compress_work,
            enqueues=enqueues,
        )
        return changed_v

    def round_cost(
        self, stats: RoundStats, spec: DeviceSpec, working_set_bytes: float
    ) -> float:
        bw_irr = effective_bandwidth(spec, working_set_bytes)
        bw_str = spec.mem_bw_gbs * 1e9 * STREAM_EFF
        # unique incident edges never exceed the worklist, however large
        # the (double-counting) degree sum gets
        edges = min(stats.degree_sum, stats.worklist_edges)
        seconds = (
            edges * (ADJACENCY_EDGE_BYTES + PAIR_FLAG_BYTES) / bw_irr
            + stats.frontier_size * STATUS_FLAG_BYTES / bw_str
        )
        if stats.compress:
            # compression work is 2 * |[s; d]| = 4 * edges touched
            seconds += 4 * edges * SIGNATURE_PAIR_BYTES / bw_irr
        return seconds


class DensePushPolicy(FrontierPushPolicy):
    """Scatter-max over *all* worklist edges — the push dual of ``dense``.

    Registered to prove the direction axis: same coverage as the dense
    pull sweep, same racy-scatter relaxation as the frontier policy.
    Its streamed worklist read matches the dense charge conventions
    (:func:`~repro.engine.accounting.charge_dense_round`), while its
    compression work follows the push shape (restricted to the relaxed
    endpoints rather than pointer-jumping the whole array).  Not in
    :data:`DEFAULT_POLICIES` — the scheduler's shipped pair covers the
    coverage axis; this one is selectable by explicit configuration.
    """

    name = "dense-push"
    direction = "push"

    def _select_edges(self, state: RoundState) -> np.ndarray:
        return np.arange(state.grouping.num_edges, dtype=np.int64)

    def run_round(self, state: RoundState, dev) -> np.ndarray:
        idx = self._select_edges(state)
        changed_v, compress_work = _scatter_round(state, idx)
        enqueues = int(np.count_nonzero(changed_v))
        charge_dense_round(
            dev, edges=idx.size, vertices=compress_work, enqueues=enqueues
        )
        return changed_v

    def round_cost(
        self, stats: RoundStats, spec: DeviceSpec, working_set_bytes: float
    ) -> float:
        bw_irr = effective_bandwidth(spec, working_set_bytes)
        bw_str = spec.mem_bw_gbs * 1e9 * STREAM_EFF
        m = stats.worklist_edges
        seconds = m * ADJACENCY_EDGE_BYTES / bw_irr + m * PAIR_FLAG_BYTES / bw_str
        if stats.compress:
            seconds += 4 * m * SIGNATURE_PAIR_BYTES / bw_irr
        return seconds


_POLICIES: "dict[str, PropagationPolicy]" = {}


def register_policy(policy: PropagationPolicy) -> PropagationPolicy:
    """Register *policy* under ``policy.name`` (last registration wins)."""
    if not policy.name or policy.direction not in ("push", "pull"):
        raise AlgorithmError(
            "a propagation policy needs a name and a direction"
            " ('push' or 'pull')"
        )
    _POLICIES[policy.name] = policy
    return policy


def get_policy(name: str) -> PropagationPolicy:
    """Look up a registered policy; raise listing the registry if unknown."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown propagation policy {name!r}; registered: "
            + ", ".join(sorted(_POLICIES))
        ) from None


def policy_names() -> "list[str]":
    """Registered policy names, sorted."""
    return sorted(_POLICIES)


register_policy(DensePullPolicy())
register_policy(FrontierPushPolicy())
register_policy(DensePushPolicy())

#: the policy pair the adaptive scheduler chooses between by default.
DEFAULT_POLICIES = ("dense", "frontier")
