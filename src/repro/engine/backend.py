"""Pluggable array backends for the shared SCC engine.

The primitives in :mod:`repro.engine.primitives` are written against a
small *backend* interface instead of hard-coding how per-level kernels
sweep vertex state.  Two strategies ship:

* :class:`DenseNumpyBackend` — the topology-driven formulation every
  algorithm in this library used historically: each level/round kernel
  scans *all* vertex status flags (Barnat/Li style), so the per-launch
  vertex work is ``|V|`` regardless of how narrow the frontier is.  This
  is the default and reproduces the pre-engine counters bit-for-bit.
* :class:`FrontierBackend` — a worklist-driven formulation: each kernel
  is sized to the active frontier/worklist instead of the whole vertex
  set, the organization data-centric GPU codes (and ECL-SCC's own edge
  worklist) use.  Labels are identical; only the device accounting
  (vertex work, hence traffic and estimated runtime) changes.

Backends are registered by name so new array substrates (Numba kernels,
sharded arrays) plug in without touching the algorithms:

    >>> from repro.engine import get_backend
    >>> get_backend("frontier").name
    'frontier'
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..graph.csr import CSRGraph
from ..types import VERTEX_DTYPE

__all__ = [
    "ArrayBackend",
    "DenseNumpyBackend",
    "FrontierBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "DEFAULT_BACKEND",
]


class ArrayBackend:
    """Interface every engine backend implements.

    A backend answers two questions for the primitive layer:

    * how to *expand* a frontier over a CSR graph (the gather shared by
      every reachability/trim primitive), and
    * how wide a vertex-state sweep a level/round kernel performs
      (:meth:`sweep_vertices`), which is what distinguishes
      topology-driven from worklist-driven kernel organizations.
    """

    #: registry key; subclasses must override.
    name = ""

    # ------------------------------------------------------------------
    def expand(self, graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
        """All out-neighbours of *frontier* (duplicates preserved)."""
        nxt, _ = self.expand_with_counts(graph, frontier)
        return nxt

    def expand_with_counts(
        self, graph: CSRGraph, frontier: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Frontier expansion returning ``(neighbours, counts)``.

        ``counts[i]`` is the out-degree of ``frontier[i]``; callers that
        need per-source attribution (colors, owners) ``np.repeat`` over
        it.  The vectorized CSR gather is shared by both backends — what
        differs between them is the accounting, not the arithmetic.
        """
        indptr, indices = graph.indptr, graph.indices
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=VERTEX_DTYPE), counts
        offsets = np.repeat(indptr[frontier], counts)
        ids = np.arange(total, dtype=VERTEX_DTYPE)
        resets = np.repeat(np.cumsum(counts) - counts, counts)
        return indices[offsets + (ids - resets)], counts

    def sweep_vertices(self, total_vertices: int, worklist_size: int) -> int:
        """Vertex work items one level/round kernel processes.

        ``worklist_size`` is the number of vertices the kernel *needs*
        to look at (frontier, active set, candidate set); backends decide
        whether the modelled kernel actually restricts itself to them.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class DenseNumpyBackend(ArrayBackend):
    """Topology-driven sweeps over dense NumPy arrays (the default).

    Every vertex-sized kernel scans the full status-flag array — the
    historical semantics of this library, and the cost structure of the
    topology-driven GPU codes the paper compares against.
    """

    name = "dense"

    def sweep_vertices(self, total_vertices: int, worklist_size: int) -> int:
        return int(total_vertices)


class FrontierBackend(DenseNumpyBackend):
    """Worklist-driven sweeps: kernels sized to the active frontier.

    Produces identical labels; models a data-centric kernel organization
    where per-level launches touch only the frontier/worklist entries
    (plus their adjacency).  On high-diameter inputs this removes the
    ``O(depth · |V|)`` flag-rescan term from the modelled traffic.
    """

    name = "frontier"

    def sweep_vertices(self, total_vertices: int, worklist_size: int) -> int:
        return int(min(total_vertices, max(worklist_size, 0)))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: "dict[str, ArrayBackend]" = {}


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Register *backend* under ``backend.name``; returns it unchanged."""
    if not backend.name:
        raise AlgorithmError("backends must define a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(backend: "str | ArrayBackend | None") -> ArrayBackend:
    """Resolve a backend by name / instance; ``None`` means the default."""
    if backend is None:
        return DEFAULT_BACKEND
    if isinstance(backend, ArrayBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise AlgorithmError(
            f"unknown engine backend {backend!r}; known: {backend_names()}"
        ) from None


def backend_names() -> "tuple[str, ...]":
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


#: the backend used when callers do not choose one — current semantics.
DEFAULT_BACKEND = register_backend(DenseNumpyBackend())
register_backend(FrontierBackend())
