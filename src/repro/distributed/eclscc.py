"""Distributed ECL-SCC on the virtual cluster.

An extension beyond the paper: because Phase 2 is plain monotone
max-propagation, ECL-SCC distributes as a textbook BSP computation —
each rank relaxes the edges whose *source* it owns, then sends updated
signatures of boundary vertices (those with cut edges) to the ranks that
read them.  Phase 3 is embarrassingly local (each rank filters its own
edges after one final signature exchange).

The interesting measurable: ECL-SCC's superstep count is the propagation
round count, while the distributed FB of McLendon pays a superstep per
BFS *level* and per residual task — on deep meshes, 10-100x more
synchronization points.  The flip side is halo width: every ECL round
ships updates across the whole edge cut, where FB's frontiers are
narrow.  The scaling benchmark (``benchmarks/test_ext_distributed.py``)
measures both sides of that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.primitives import scc_edge_filter_mask
from ..engine.scheduler import DENSITY_THRESHOLD
from ..errors import AlgorithmError, ConvergenceError, RankLossError
from ..faults.inject import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.recovery import backoff_seconds
from ..graph.csr import CSRGraph
from ..results import AlgoResult
from ..trace import Tracer, ensure_tracer
from ..types import NO_VERTEX, VERTEX_DTYPE
from .cluster import ClusterSpec, VirtualCluster
from .partition import Partition

__all__ = ["DistributedResult", "distributed_ecl_scc"]


@dataclass(eq=False)
class DistributedResult(AlgoResult):
    """Labels plus the cluster's accounting for one distributed run.

    Extends :class:`~repro.results.AlgoResult`; ``device`` stays None
    (the run is accounted by ``cluster``, not a single device).
    """

    # base fields (labels, num_sccs, device, trace) come from AlgoResult;
    # the defaulted base fields force defaults here — construct by keyword
    outer_iterations: int = 0
    supersteps: int = 0
    cluster: "VirtualCluster | None" = None

    @property
    def estimated_seconds(self) -> float:
        return self.cluster.estimated_seconds


def distributed_ecl_scc(
    graph: CSRGraph,
    partition: Partition,
    spec: "ClusterSpec | None" = None,
    *,
    frontier: bool = False,
    engine: "str | None" = None,
    tracer: "Tracer | None" = None,
    faults: "FaultPlan | None" = None,
) -> DistributedResult:
    """Run ECL-SCC as a BSP computation over *partition*.

    The result is bit-identical to the shared-memory algorithm (the
    fixed point does not depend on the schedule); the cluster object
    carries the communication accounting.  With *tracer*, every BSP
    superstep is one ``superstep`` span (attrs: ``index``, ``kind``)
    nested in its ``outer-iteration``, and halo traffic is recorded as
    per-rank ``halo-messages`` counters (attr ``rank``).

    With ``frontier`` (default off), each rank applies the shared-memory
    frontier engine's cross-iteration reuse: Phase 1 re-initializes only
    still-active vertices (completed vertices keep their converged
    ``(label:label)`` pairs, which surviving edges never read — the
    Phase-3 filter drops every edge incident to a completed vertex), and
    each Phase-2 round relaxes only the edges adjacent to the previous
    round's changed vertices (plus any fault-regressed victims, which
    re-enter the frontier).  An edge with quiescent endpoints relaxes to
    the values it already holds, so the per-round iterates — and hence
    rounds, supersteps, halo messages, and labels — are *identical* to
    the dense sweep; only the per-rank compute charge (active edges
    instead of all local edges) and the Phase-1 init charge shrink.

    ``engine`` names the per-rank round organization explicitly:
    ``"dense"``, ``"frontier"`` (equivalent to ``frontier=True``), or
    ``"adaptive"`` — the distributed analogue of the shared-memory
    adaptive engine.  Adaptive keeps the frontier iterates (identical
    labels, rounds, supersteps, messages) but every rank picks its own
    round organization *per superstep* from its local frontier density:
    a rank whose selected-edge mass exceeds
    :data:`~repro.engine.scheduler.DENSITY_THRESHOLD` of its local edges
    is charged the dense sweep (cheaper per edge — no worklist
    indirection), others the frontier relaxation, plus one op per local
    frontier flag for the density scan itself.  Each rank's choice is a
    ``scheduler:pick`` counter event (attrs ``rank``, ``round``) under
    the tracer.

    With *faults*, the plan's cluster-layer faults perturb the exchange
    supersteps: dropped/delayed boundary updates are regressed and
    re-propagated in later rounds (monotone — labels unchanged; drops
    charge re-sent messages), duplicated messages charge extra traffic,
    and a rank crash triggers bounded superstep retry with exponential
    backoff (charged to the alpha-beta model via
    :meth:`~repro.distributed.cluster.VirtualCluster.charge_retry`).  A
    permanent rank loss either fails over — survivors absorb the dead
    rank's work, ``result.status == "degraded"`` — or raises
    :class:`~repro.errors.RankLossError` with a structured payload when
    ``plan.failover`` is off.
    """
    if engine is None:
        engine = "frontier" if frontier else "dense"
    if engine not in ("dense", "frontier", "adaptive"):
        raise AlgorithmError(
            f"unknown distributed engine {engine!r}; valid choices:"
            " dense, frontier, adaptive"
        )
    # frontier and adaptive share the reuse iterates; adaptive only
    # changes the per-rank *charge* (and records its picks)
    frontier = engine != "dense"
    adaptive = engine == "adaptive"
    if spec is None:
        spec = ClusterSpec(num_ranks=partition.num_ranks)
    if spec.num_ranks != partition.num_ranks:
        raise ConvergenceError("partition and cluster rank counts differ")
    cluster = VirtualCluster(spec)
    tr = ensure_tracer(tracer)
    injector = FaultInjector(faults, tracer=tr) if faults is not None else None
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    if n == 0:
        return DistributedResult(
            labels=labels, num_sccs=0, cluster=cluster,
            trace=tr.trace if tr.enabled else None,
            fault_report=injector.report if injector else None,
        )

    src, dst = (a.copy() for a in graph.edges())
    owner = partition.owner
    if injector is not None:
        owner = owner.copy()  # failover may reassign the dead rank's work
    r = spec.num_ranks
    # boundary vertices: endpoints of cut edges, grouped by owner; a
    # signature update of a boundary vertex must be shipped to every rank
    # holding an edge that reads it.  We approximate the fan-out as 1
    # message per (boundary vertex, reading rank) pair via the cut-edge
    # counts per rank — the standard halo-exchange volume.
    ident = np.arange(n, dtype=VERTEX_DTYPE)
    sig_in = ident.copy()
    sig_out = ident.copy()
    active = np.ones(n, dtype=bool)
    outer = 0
    supersteps = 0

    while active.any():
        outer += 1
        if outer > n + 2:
            raise ConvergenceError("distributed ECL-SCC failed to converge")
        outer_span = tr.span("outer-iteration", index=outer)
        if frontier:
            # partial re-init: completed vertices keep (label:label);
            # no surviving edge reads them (see scc_edge_filter_mask)
            seeds = np.flatnonzero(active)
            sig_in[seeds] = seeds
            sig_out[seeds] = seeds
            init_ops = np.bincount(owner[seeds], minlength=r) * 2.0
        else:
            sig_in[:] = ident
            sig_out[:] = ident
            init_ops = np.bincount(owner, minlength=r) * 2.0
        # per-rank local edge counts for this iteration's worklist
        edges_per_rank = np.bincount(owner[src], minlength=r) if src.size else np.zeros(r)
        cut = owner[src] != owner[dst]
        # Phase 1 superstep (init is local)
        with tr.span("superstep", index=supersteps, kind="phase1-init"):
            cluster.superstep(init_ops, label="phase1-init")
        supersteps += 1
        # Phase 2: BSP rounds to the fixed point.  Injected message
        # faults regress updates and so add recovery rounds; the safety
        # bound grows by the plan's cluster fault budget to match.
        rounds_bound = (n + 2) * (
            1 + (faults.max_cluster_faults if faults is not None else 0)
        )
        rounds = 0
        # frontier mode: the vertices whose signature moved last round
        # (seeded with the re-initialized active set); only their
        # incident edges can make progress this round
        frontier_v = active.copy() if frontier else None
        while True:
            rounds += 1
            if rounds > rounds_bound:
                raise ConvergenceError(
                    "distributed Phase 2 failed to converge",
                    iterations=rounds - 1,
                    labels=labels.copy(),
                    sig_in=sig_in.copy(),
                    sig_out=sig_out.copy(),
                    active_count=int(np.count_nonzero(active)),
                )
            # local relax (Jacobi; sources' ranks do the work).  The
            # frontier mode relaxes only changed-adjacent edges — the
            # skipped edges relax to values they already hold, so the
            # iterates (and the round count) match the dense sweep.
            if frontier:
                sel = frontier_v[src] | frontier_v[dst]
                rs, rd = src[sel], dst[sel]
            else:
                rs, rd = src, dst
            prev_in, prev_out = sig_in, sig_out
            new_out = sig_out.copy()
            np.maximum.at(new_out, rs, sig_out[rd])
            new_in = sig_in.copy()
            np.maximum.at(new_in, rd, sig_in[rs])
            changed_v = (new_out != sig_out) | (new_in != sig_in)
            sig_out, sig_in = new_out, new_in
            # BSP pointer jumping (one request/reply gather superstep):
            # signatures are vertex IDs, so in[in[v]] / out[out[v]] are
            # remote lookups when the pointed-to vertex lives elsewhere —
            # the standard distributed pointer-doubling of BSP
            # connectivity algorithms, giving O(log) rounds.
            ji = sig_in[sig_in]
            jo = sig_out[sig_out]
            jump_changed = (ji != sig_in) | (jo != sig_out)
            # each rank requests every *distinct* remote pointer target
            # once (batched gather), then receives one reply per request
            jump_msgs = np.zeros(r, dtype=np.int64)
            for sig in (sig_in, sig_out):
                rem = owner[sig] != owner
                if frontier:
                    # completed vertices do not participate in jumps;
                    # dense counts them as local self-pointers, so the
                    # message totals stay identical
                    rem &= active
                if rem.any():
                    pair = owner[rem] * np.int64(n) + sig[rem]
                    uniq_pairs = np.unique(pair)
                    jump_msgs += 2 * np.bincount(
                        (uniq_pairs // n).astype(np.int64), minlength=r
                    )
            sig_in, sig_out = ji, jo
            changed_v |= jump_changed
            changed = bool(changed_v.any())
            # halo exchange: updated boundary vertices ship one message
            # per cut edge that reads them (16 bytes: two signatures)
            upd_cut = cut & (changed_v[src] | changed_v[dst])
            msgs = np.bincount(owner[src[upd_cut]], minlength=r) + jump_msgs
            extra_msgs = 0
            if injector is not None:
                # message faults perturb this exchange: drops/delays
                # regress the victims' published updates (the receivers
                # never see them this round — monotone, recomputed
                # later), dups and drop re-sends charge extra traffic
                boundary = np.zeros(n, dtype=bool)
                boundary[src[cut]] = True
                boundary[dst[cut]] = True
                perturb = injector.perturb_exchange(
                    supersteps, np.flatnonzero(changed_v & boundary)
                )
                if perturb.injected:
                    v = perturb.regress
                    if v.size:
                        sig_in[v] = prev_in[v]
                        sig_out[v] = prev_out[v]
                        if frontier:
                            # regressed victims re-enter the frontier so
                            # their incident edges re-relax next round
                            # (msgs above are already counted — dense
                            # does not re-announce rollbacks either)
                            changed_v[v] = True
                    extra_msgs = perturb.extra_messages
                    changed = True  # regressed updates must re-propagate
                if injector.rank_crash_due(supersteps):
                    recovered = _retry_crashed_rank(
                        injector, cluster, faults, supersteps
                    )
                    if not recovered:
                        owner, edges_per_rank, cut = _fail_over(
                            injector, faults, owner, src, dst, r,
                            supersteps=supersteps, labels=labels,
                            outer=outer,
                        )
            if extra_msgs:
                spread = np.full(r, extra_msgs // r, dtype=msgs.dtype)
                spread[: extra_msgs % r] += 1
                msgs = msgs + spread
            if frontier:
                # charge only the edges this round actually relaxed and
                # the vertices that still participate in jumps
                sel_ops = (
                    np.bincount(owner[rs], minlength=r) * spec.ops_per_edge
                )
                jump_ops = np.bincount(owner[active], minlength=r) * 4.0
                if adaptive:
                    # per-rank per-superstep selection: the worklist
                    # indirection inflates the frontier relaxation's
                    # per-edge cost by 1/DENSITY_THRESHOLD (the same
                    # byte-level derivation as the shared-memory
                    # scheduler, docs/performance_model.md), so a rank
                    # whose selected mass crosses the threshold of its
                    # local edges is charged the dense sweep instead.
                    # Iterates, messages and supersteps are untouched —
                    # a dense relaxation of the skipped edges returns
                    # the values they already hold.
                    dense_ops = edges_per_rank * spec.ops_per_edge
                    frontier_ops = sel_ops / DENSITY_THRESHOLD
                    pick_frontier = frontier_ops <= dense_ops
                    # the density scan itself: one op per local frontier
                    # flag (charged whether or not frontier wins)
                    scan_ops = np.bincount(
                        owner[np.flatnonzero(frontier_v)], minlength=r
                    ).astype(np.float64)
                    round_ops = (
                        np.where(pick_frontier, frontier_ops, dense_ops)
                        + jump_ops
                        + scan_ops
                    )
                    if tr.enabled:
                        for rk in range(r):
                            tr.counter(
                                "scheduler:pick",
                                policy=(
                                    "frontier" if pick_frontier[rk] else "dense"
                                ),
                                rank=rk,
                                round=rounds,
                            )
                else:
                    round_ops = sel_ops + jump_ops
            else:
                round_ops = (
                    edges_per_rank * spec.ops_per_edge
                    + np.bincount(owner, minlength=r) * 4.0
                )
            with tr.span(
                "superstep", index=supersteps, kind="phase2-exchange", round=rounds
            ):
                cluster.superstep(
                    round_ops,
                    messages=msgs,
                    bytes_out=msgs * 16,
                    label="phase2-exchange",
                )
                if tr.enabled:
                    for rk in np.flatnonzero(msgs):
                        tr.counter("halo-messages", int(msgs[rk]), rank=int(rk))
            supersteps += 1
            if frontier:
                frontier_v = changed_v
            if not changed:
                break
        # completion + Phase 3 (local filtering after the final exchange)
        done = sig_in == sig_out
        newly = done & active
        labels[newly] = sig_in[newly]
        active &= ~done
        keep = scc_edge_filter_mask(sig_in, sig_out, src, dst)
        with tr.span("superstep", index=supersteps, kind="phase3-filter"):
            cluster.superstep(
                edges_per_rank * spec.ops_per_edge, label="phase3-filter"
            )
        supersteps += 1
        src, dst = src[keep], dst[keep]
        outer_span.close()

    return DistributedResult(
        labels=labels,
        num_sccs=int(np.unique(labels).size),
        outer_iterations=outer,
        supersteps=supersteps,
        cluster=cluster,
        trace=tr.trace if tr.enabled else None,
        status=injector.status() if injector is not None else "clean",
        fault_report=injector.report if injector is not None else None,
    )


def _retry_crashed_rank(
    injector: FaultInjector,
    cluster: VirtualCluster,
    plan: FaultPlan,
    superstep: int,
) -> bool:
    """Bounded retry of a crashed rank's superstep.  True once recovered.

    Attempt *k* waits ``backoff_base_us * 2**k``, floored by the
    straggler-adjusted duration of the last superstep; each wait stalls
    the whole BSP machine and is charged to the alpha-beta model.
    """
    dead = plan.rank_crash_rank % cluster.spec.num_ranks
    for attempt in range(plan.max_retries):
        wait = backoff_seconds(
            plan, attempt, floor_s=cluster.last_superstep_seconds
        )
        cluster.charge_retry(wait)
        injector.record_retry(superstep, dead, attempt, wait)
        if attempt + 1 >= plan.rank_recover_after:
            return True
    return False


def _fail_over(
    injector: FaultInjector,
    plan: FaultPlan,
    owner: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    r: int,
    *,
    supersteps: int,
    labels: np.ndarray,
    outer: int,
):
    """Redistribute a permanently-lost rank's vertices across survivors.

    Raises :class:`~repro.errors.RankLossError` (with the partial state
    attached) when failover is disabled or no survivor exists.  Returns
    the updated ``(owner, edges_per_rank, cut)``.
    """
    dead = plan.rank_crash_rank % r
    if not plan.failover or r <= 1:
        raise RankLossError(
            f"rank {dead} lost permanently after {plan.max_retries}"
            " failed retries and failover is disabled",
            rank=dead,
            superstep=supersteps,
            retries=plan.max_retries,
            labels=labels.copy(),
            iterations=outer,
            fault_report=injector.report,
        )
    survivors = np.array([k for k in range(r) if k != dead], dtype=owner.dtype)
    victims = np.flatnonzero(owner == dead)
    owner[victims] = survivors[np.arange(victims.size) % survivors.size]
    injector.record_failover(supersteps, dead)
    edges_per_rank = (
        np.bincount(owner[src], minlength=r).astype(np.float64)
        if src.size
        else np.zeros(r)
    )
    cut = owner[src] != owner[dst]
    return owner, edges_per_rank, cut
