"""Virtual distributed-memory cluster: BSP supersteps with an alpha-beta
communication model.

The distributed algorithms in this package are bulk-synchronous: each
superstep does local work on every rank, then exchanges boundary data.
:class:`VirtualCluster` accumulates, per superstep, the *maximum* local
work over ranks (the BSP critical path) and the messages/bytes exchanged,
and converts them to estimated seconds with the classic alpha-beta model::

    t = sum over supersteps of [ max_rank(local_ops) / rank_speed
                                 + alpha * max_rank(messages)
                                 + max_rank(bytes) / beta ]

Defaults model a commodity MPI cluster (alpha = 2 us latency,
beta = 10 GB/s effective per-rank bandwidth); the per-rank compute speed
comes from a :class:`~repro.device.spec.DeviceSpec` (one CPU socket per
rank by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.spec import XEON_6226R, DeviceSpec
from ..errors import DeviceError

__all__ = ["ClusterSpec", "SuperstepRecord", "VirtualCluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters of the virtual cluster.

    ``stragglers`` is an optional per-rank slowdown factor (>= 1.0, one
    entry per rank): rank *i*'s local compute takes ``stragglers[i]``
    times longer.  Because a BSP superstep waits for the slowest rank,
    stragglers stretch the critical path — and they give the retry
    machinery its principled timeout floor (a retry cannot observe
    failure faster than the slowest surviving rank computes).
    """

    num_ranks: int
    rank_device: DeviceSpec = XEON_6226R
    alpha_us: float = 2.0          # per-message latency
    beta_gbs: float = 10.0         # per-rank network bandwidth
    ops_per_edge: float = 10.0     # matches the CPU cost model convention
    stragglers: "tuple[float, ...] | None" = None

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise DeviceError(f"num_ranks must be >= 1, got {self.num_ranks}")
        if self.alpha_us <= 0 or self.beta_gbs <= 0:
            raise DeviceError("alpha and beta must be positive")
        if self.stragglers is not None:
            factors = tuple(float(f) for f in self.stragglers)
            if len(factors) != self.num_ranks:
                raise DeviceError(
                    f"stragglers needs one factor per rank"
                    f" ({self.num_ranks}), got {len(factors)}"
                )
            if any(f < 1.0 for f in factors):
                raise DeviceError("straggler factors must be >= 1.0")
            object.__setattr__(self, "stragglers", factors)


@dataclass(frozen=True)
class SuperstepRecord:
    """One superstep's cost, kept for per-rank profiling.

    ``rank_seconds`` is each rank's *busy* time this step (straggler
    factors applied); the step's critical path is the per-term maxima
    (``compute + latency + bandwidth``), which can exceed the busiest
    single rank when different ranks dominate different terms.
    """

    index: int
    label: str
    compute: float
    latency: float
    bandwidth: float
    rank_seconds: np.ndarray

    @property
    def seconds(self) -> float:
        return self.compute + self.latency + self.bandwidth


@dataclass
class VirtualCluster:
    """Accumulates BSP superstep costs for one distributed run.

    Besides the aggregate seconds, every superstep is kept as a
    :class:`SuperstepRecord` (label + per-rank busy seconds) so
    :func:`repro.profile.profile_cluster` can report per-phase critical
    paths and rank imbalance after the run.
    """

    spec: ClusterSpec
    supersteps: int = 0
    compute_seconds: float = 0.0
    latency_seconds: float = 0.0
    bandwidth_seconds: float = 0.0
    total_messages: int = 0
    total_bytes: int = 0
    retry_supersteps: int = 0
    backoff_seconds: float = 0.0
    last_superstep_seconds: float = 0.0
    step_records: "list[SuperstepRecord]" = field(default_factory=list, repr=False)
    _rank_ops: "np.ndarray | None" = field(default=None, repr=False)

    def superstep(
        self,
        local_ops: np.ndarray,
        *,
        messages: "np.ndarray | int" = 0,
        bytes_out: "np.ndarray | int" = 0,
        label: str = "superstep",
    ) -> None:
        """Record one superstep.

        ``local_ops`` is per-rank operation counts (length ``num_ranks``
        or a scalar applied to all); ``messages``/``bytes_out`` likewise.
        ``label`` names the phase the step belongs to (``phase1-init``,
        ``phase2-exchange``, ...) for the per-rank profile.  Negative
        counts are a caller bug, not a valid superstep, and raise
        :class:`~repro.errors.DeviceError`.
        """
        r = self.spec.num_ranks
        ops = np.broadcast_to(np.asarray(local_ops, dtype=np.float64), (r,))
        msg = np.broadcast_to(np.asarray(messages, dtype=np.float64), (r,))
        byt = np.broadcast_to(np.asarray(bytes_out, dtype=np.float64), (r,))
        for name, arr in (("local_ops", ops), ("messages", msg), ("bytes_out", byt)):
            if arr.size and float(arr.min()) < 0:
                raise DeviceError(
                    f"superstep {name} must be >= 0, got min {arr.min()}"
                )
        if self.spec.stragglers is not None:
            ops = ops * np.asarray(self.spec.stragglers, dtype=np.float64)
        dev = self.spec.rank_device
        rank_speed = dev.lanes * dev.clock_ghz * 1e9 * dev.ipc
        self.supersteps += 1
        step_compute = float(ops.max()) / rank_speed
        step_latency = float(msg.max()) * self.spec.alpha_us * 1e-6
        step_bandwidth = float(byt.max()) / (self.spec.beta_gbs * 1e9)
        self.compute_seconds += step_compute
        self.latency_seconds += step_latency
        self.bandwidth_seconds += step_bandwidth
        self.last_superstep_seconds = step_compute + step_latency + step_bandwidth
        self.total_messages += int(msg.sum())
        self.total_bytes += int(byt.sum())
        self.step_records.append(
            SuperstepRecord(
                index=self.supersteps - 1,
                label=label,
                compute=step_compute,
                latency=step_latency,
                bandwidth=step_bandwidth,
                rank_seconds=(
                    ops / rank_speed
                    + msg * (self.spec.alpha_us * 1e-6)
                    + byt / (self.spec.beta_gbs * 1e9)
                ),
            )
        )

    def charge_retry(self, wait_seconds: float) -> None:
        """Account one failed-superstep retry: the backoff wait stalls the
        whole BSP machine (every rank sits at the barrier), so it adds
        directly to the critical path."""
        if wait_seconds < 0:
            raise DeviceError(f"retry wait must be >= 0, got {wait_seconds}")
        self.retry_supersteps += 1
        self.backoff_seconds += float(wait_seconds)

    @property
    def estimated_seconds(self) -> float:
        return (
            self.compute_seconds
            + self.latency_seconds
            + self.bandwidth_seconds
            + self.backoff_seconds
        )

    def summary(self) -> "dict[str, float | int]":
        return {
            "ranks": self.spec.num_ranks,
            "supersteps": self.supersteps,
            "compute_s": self.compute_seconds,
            "latency_s": self.latency_seconds,
            "bandwidth_s": self.bandwidth_seconds,
            "retry_supersteps": self.retry_supersteps,
            "backoff_s": self.backoff_seconds,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "estimated_s": self.estimated_seconds,
        }
