"""Distributed FB-Trim on the virtual cluster (McLendon et al. 2005).

The paper's ref [15] — the method radiative-transfer codes used before
GPU SCC detection existed.  Trim-1 and the Forward-Backward reach sets
run as level-synchronous BSP computations: each BFS level is one
superstep whose halo exchange ships the frontier vertices crossing rank
boundaries.  On high-diameter mesh graphs the level count (and hence the
latency-bound superstep count) scales with the DAG depth — the cost
structure ECL-SCC's O(log) rounds avoid (see
``benchmarks/test_ext_distributed.py``).
"""

from __future__ import annotations

import numpy as np

from ..engine import get_backend
from ..engine.primitives import frontier_expand
from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..types import NO_VERTEX, VERTEX_DTYPE
from .cluster import ClusterSpec, VirtualCluster
from .eclscc import DistributedResult
from .partition import Partition

__all__ = ["distributed_fbtrim"]


def _bsp_reach(
    graph: CSRGraph,
    sources: np.ndarray,
    active: np.ndarray,
    owner: np.ndarray,
    cluster: VirtualCluster,
) -> "tuple[np.ndarray, int]":
    """Level-synchronous multi-source BFS with halo accounting."""
    n = graph.num_vertices
    r = cluster.spec.num_ranks
    visited = np.zeros(n, dtype=bool)
    sources = sources[active[sources]]
    visited[sources] = True
    frontier = np.unique(sources)
    levels = 0
    be = get_backend(None)
    while frontier.size:
        levels += 1
        nxt, counts = be.expand_with_counts(graph, frontier)
        expander_ops = np.bincount(
            owner[frontier], weights=counts.astype(np.float64), minlength=r
        ) * cluster.spec.ops_per_edge
        if nxt.size == 0:
            cluster.superstep(expander_ops + 1.0, label="fb-reach-level")
            break
        crossing = owner[np.repeat(frontier, counts)] != owner[nxt]
        msgs = np.bincount(
            owner[np.repeat(frontier, counts)[crossing]], minlength=r
        )
        cluster.superstep(
            expander_ops + 1.0, messages=msgs, bytes_out=msgs * 8,
            label="fb-reach-level",
        )
        nxt = nxt[active[nxt] & ~visited[nxt]]
        frontier = np.unique(nxt)
        visited[frontier] = True
    return visited, levels


def distributed_fbtrim(
    graph: CSRGraph,
    partition: Partition,
    spec: "ClusterSpec | None" = None,
) -> DistributedResult:
    """McLendon-style distributed FB-Trim; same result contract as
    :func:`~repro.distributed.eclscc.distributed_ecl_scc`."""
    if spec is None:
        spec = ClusterSpec(num_ranks=partition.num_ranks)
    if spec.num_ranks != partition.num_ranks:
        raise ConvergenceError("partition and cluster rank counts differ")
    cluster = VirtualCluster(spec)
    n = graph.num_vertices
    labels = np.full(n, NO_VERTEX, dtype=VERTEX_DTYPE)
    if n == 0:
        return DistributedResult(labels=labels, num_sccs=0, cluster=cluster)
    owner = partition.owner
    r = spec.num_ranks
    gt = graph.transpose()
    src, dst = graph.edges()
    active = np.ones(n, dtype=bool)
    supersteps = 0

    # ---- distributed Trim-1: peel; every round is one superstep with a
    # halo exchange of removed boundary vertices ------------------------
    in_deg = graph.in_degree().astype(np.int64).copy()
    out_deg = graph.out_degree().astype(np.int64).copy()
    frontier = np.flatnonzero((in_deg == 0) | (out_deg == 0))
    rounds = 0
    while frontier.size:
        rounds += 1
        if rounds > n + 2:  # pragma: no cover - safety
            raise ConvergenceError("distributed trim failed to converge")
        labels[frontier] = frontier
        active[frontier] = False
        # decrements along the removed vertices' edges
        fwd = frontier_expand(graph, frontier)
        bwd = frontier_expand(gt, frontier)
        np.subtract.at(in_deg, fwd, 1)
        np.subtract.at(out_deg, bwd, 1)
        ops = np.bincount(owner, minlength=r).astype(np.float64)  # flag scan
        # halo: removals on the partition boundary notify neighbouring ranks
        if partition.num_cut_edges:
            boundary_vs = np.unique(
                np.concatenate(
                    [src[partition.cut_edges], dst[partition.cut_edges]]
                )
            )
            bnd = frontier[np.isin(frontier, boundary_vs)]
        else:
            bnd = frontier[:0]
        msgs = np.bincount(owner[bnd], minlength=r)
        cluster.superstep(ops, messages=msgs, bytes_out=msgs * 8, label="trim-round")
        supersteps += 1
        cand = np.unique(np.concatenate([fwd, bwd]))
        cand = cand[active[cand]]
        frontier = cand[(in_deg[cand] <= 0) | (out_deg[cand] <= 0)]

    # ---- FB recursion, one subgraph at a time (the 2005 formulation) ---
    tasks = []
    if active.any():
        tasks.append(np.flatnonzero(active).astype(VERTEX_DTYPE))
    mask = np.zeros(n, dtype=bool)
    fb_rounds = 0
    while tasks:
        task = tasks.pop()
        if task.size == 1:
            labels[task[0]] = task[0]
            continue
        fb_rounds += 1
        if fb_rounds > n + 2:  # pragma: no cover - safety
            raise ConvergenceError("distributed FB failed to converge")
        mask[:] = False
        mask[task] = True
        pivot = np.asarray([int(task.max())], dtype=VERTEX_DTYPE)
        fwd, l1 = _bsp_reach(graph, pivot, mask, owner, cluster)
        bwd, l2 = _bsp_reach(gt, pivot, mask, owner, cluster)
        supersteps += l1 + l2
        scc = fwd & bwd & mask
        scc_idx = np.flatnonzero(scc)
        labels[scc_idx] = scc_idx.max()
        for sub_mask in (fwd & ~scc & mask, bwd & ~scc & mask, mask & ~fwd & ~bwd):
            sub = np.flatnonzero(sub_mask)
            if sub.size:
                tasks.append(sub.astype(VERTEX_DTYPE))

    assert not np.any(labels == NO_VERTEX)
    return DistributedResult(
        labels=labels,
        num_sccs=int(np.unique(labels).size),
        outer_iterations=fb_rounds,
        supersteps=supersteps,
        cluster=cluster,
    )
