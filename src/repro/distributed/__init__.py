"""Virtual distributed-memory substrate (McLendon lineage, paper ref [15]).

Bulk-synchronous implementations of ECL-SCC and FB-Trim over a vertex
partition, with an alpha-beta communication cost model — the setting the
radiative-transfer community used before GPU SCC detection.
"""

from .partition import Partition, block_partition, random_partition
from .cluster import ClusterSpec, VirtualCluster
from .eclscc import DistributedResult, distributed_ecl_scc
from .fb import distributed_fbtrim

__all__ = [
    "Partition",
    "block_partition",
    "random_partition",
    "ClusterSpec",
    "VirtualCluster",
    "DistributedResult",
    "distributed_ecl_scc",
    "distributed_fbtrim",
]
