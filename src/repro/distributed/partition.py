"""Vertex partitioning for the virtual distributed-memory cluster.

McLendon et al. (the paper's ref [15]) run FB-Trim on distributed graphs
where each MPI rank owns a contiguous slab of mesh elements.  A
:class:`Partition` assigns every vertex an owner rank and precomputes the
*cut* structure (edges whose endpoints live on different ranks) that the
distributed algorithms pay communication for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphValidationError
from ..graph.csr import CSRGraph
from ..types import VERTEX_DTYPE

__all__ = ["Partition", "block_partition", "random_partition"]


@dataclass(frozen=True)
class Partition:
    """An assignment of vertices to ``num_ranks`` owners.

    Attributes
    ----------
    owner:
        ``(n,)`` rank of each vertex.
    num_ranks:
        number of ranks.
    cut_edges:
        boolean mask over the graph's CSR edge order: True where the
        source and destination live on different ranks.
    """

    owner: np.ndarray
    num_ranks: int
    cut_edges: np.ndarray

    @property
    def num_cut_edges(self) -> int:
        return int(np.count_nonzero(self.cut_edges))

    def rank_sizes(self) -> np.ndarray:
        return np.bincount(self.owner, minlength=self.num_ranks)

    def edge_cut_fraction(self) -> float:
        m = self.cut_edges.size
        return self.num_cut_edges / m if m else 0.0


def _build(graph: CSRGraph, owner: np.ndarray, num_ranks: int) -> Partition:
    owner = np.ascontiguousarray(owner, dtype=VERTEX_DTYPE)
    if owner.size != graph.num_vertices:
        raise GraphValidationError(
            f"owner must assign all {graph.num_vertices} vertices"
        )
    if owner.size and (owner.min() < 0 or owner.max() >= num_ranks):
        raise GraphValidationError("owner ranks out of range")
    src, dst = graph.edges()
    cut = owner[src] != owner[dst]
    return Partition(owner=owner, num_ranks=num_ranks, cut_edges=cut)


def block_partition(graph: CSRGraph, num_ranks: int) -> Partition:
    """Contiguous vertex slabs (the mesh-natural decomposition).

    For mesh sweep graphs whose element numbering is spatially coherent,
    block slabs approximate a geometric decomposition and give low edge
    cuts — the assumption McLendon's setting makes.
    """
    if num_ranks < 1:
        raise GraphValidationError(f"num_ranks must be >= 1, got {num_ranks}")
    n = graph.num_vertices
    owner = np.minimum(
        (np.arange(n, dtype=VERTEX_DTYPE) * num_ranks) // max(n, 1),
        num_ranks - 1,
    )
    return _build(graph, owner, num_ranks)


def random_partition(graph: CSRGraph, num_ranks: int, seed: int = 0) -> Partition:
    """Uniform random ownership — the worst case for the edge cut."""
    if num_ranks < 1:
        raise GraphValidationError(f"num_ranks must be >= 1, got {num_ranks}")
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, num_ranks, size=graph.num_vertices, dtype=VERTEX_DTYPE)
    return _build(graph, owner, num_ranks)
