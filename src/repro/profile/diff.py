"""Trace diffing: explain a regression as per-phase counter/time deltas.

``repro trace diff A B`` loads two JSONL traces (same schema version —
mixed versions are rejected with a clear error), attributes each side's
launch ledger with the device spec recorded in its trace meta, and
reports, per span path, the seconds delta plus the counter movements
that caused it.  The bench-regression CI gate prints the top regressed
phase from this diff when it fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..device.costmodel import working_set_of_graph
from ..device.spec import DeviceSpec, device_by_name
from ..trace.records import Trace
from .attribution import PhaseProfile, attribute_launches

__all__ = ["PhaseDelta", "TraceDiff", "diff_traces", "render_diff"]

#: counters surfaced in the per-phase explanation, most telling first.
_EXPLAIN_COUNTERS = (
    "kernel_launches",
    "bytes_moved",
    "bytes_streamed",
    "edge_work",
    "atomics",
    "global_barriers",
)


@dataclass
class PhaseDelta:
    """One phase's movement between the base and new traces."""

    phase: str
    base_seconds: float
    new_seconds: float
    classification: str
    counters: "Dict[str, tuple[int, int]]" = field(default_factory=dict)

    @property
    def delta(self) -> float:
        return self.new_seconds - self.base_seconds

    @property
    def ratio(self) -> float:
        if self.base_seconds == 0.0:
            return float("inf") if self.new_seconds else 1.0
        return self.new_seconds / self.base_seconds

    def explain(self) -> str:
        """The counter movements behind the delta, compactly."""
        parts = []
        for name in _EXPLAIN_COUNTERS:
            b, n = self.counters.get(name, (0, 0))
            if b != n:
                parts.append(f"{name} {b} -> {n}")
        return "; ".join(parts) if parts else "no counter movement"

    def to_dict(self) -> "dict":
        return {
            "phase": self.phase,
            "base_seconds": self.base_seconds,
            "new_seconds": self.new_seconds,
            "delta_seconds": self.delta,
            "ratio": self.ratio,
            "classification": self.classification,
            "counters": {k: list(v) for k, v in self.counters.items()},
        }


@dataclass
class TraceDiff:
    """Per-phase comparison of two traced runs, worst regression first."""

    device: str
    base_total: float
    new_total: float
    phases: "List[PhaseDelta]"

    @property
    def top_regression(self) -> "PhaseDelta | None":
        """The phase contributing the largest seconds increase, if any."""
        worst = None
        for pd in self.phases:
            if pd.delta > 0 and (worst is None or pd.delta > worst.delta):
                worst = pd
        return worst

    def to_dict(self) -> "dict":
        top = self.top_regression
        return {
            "device": self.device,
            "base_total_seconds": self.base_total,
            "new_total_seconds": self.new_total,
            "top_regression": top.to_dict() if top is not None else None,
            "phases": [pd.to_dict() for pd in self.phases],
        }


def _resolve_spec(trace: Trace, label: str) -> DeviceSpec:
    name = trace.meta.get("device")
    if not name:
        raise ValueError(
            f"{label} trace has no 'device' in its meta; re-record it with"
            " `repro trace`/`repro profile --jsonl` or pass a spec"
        )
    return device_by_name(str(name))

def _working_set(trace: Trace) -> float:
    n = trace.meta.get("num_vertices")
    m = trace.meta.get("num_edges")
    if n is None or m is None:
        return 0.0
    return working_set_of_graph(int(n), int(m))


def _by_phase(phases: "list[PhaseProfile]") -> "dict[str, PhaseProfile]":
    return {ph.name: ph for ph in phases}


def diff_traces(
    base: Trace,
    new: Trace,
    *,
    spec: "DeviceSpec | None" = None,
) -> TraceDiff:
    """Diff two traces' attributed per-phase costs.

    Both traces must declare the same JSONL schema version; mixing a
    pre-versioning (schema 1) file with a current one raises
    :class:`ValueError` rather than silently comparing a trace that has
    no launch ledger.  The device spec defaults to the (matching)
    ``device`` recorded in the traces' meta.
    """
    if base.schema != new.schema:
        raise ValueError(
            f"mixed trace schema versions: base is schema {base.schema},"
            f" new is schema {new.schema}; re-record the older trace"
        )
    if spec is None:
        base_spec = _resolve_spec(base, "base")
        new_spec = _resolve_spec(new, "new")
        if base_spec.name != new_spec.name:
            raise ValueError(
                f"traces were recorded on different devices"
                f" ({base_spec.name} vs {new_spec.name}); pass spec= to"
                " force one model"
            )
        spec = base_spec
    base_phases = _by_phase(
        attribute_launches(base, spec, working_set_bytes=_working_set(base))
    )
    new_phases = _by_phase(
        attribute_launches(new, spec, working_set_bytes=_working_set(new))
    )
    deltas: "list[PhaseDelta]" = []
    for name in list(base_phases) + [
        n for n in new_phases if n not in base_phases
    ]:
        if name in {pd.phase for pd in deltas}:
            continue
        b = base_phases.get(name)
        n = new_phases.get(name)
        counters: "Dict[str, tuple[int, int]]" = {}
        for key in _EXPLAIN_COUNTERS:
            bv = b.counters[key] if b else 0
            nv = n.counters[key] if n else 0
            if bv or nv:
                counters[key] = (bv, nv)
        deltas.append(
            PhaseDelta(
                phase=name,
                base_seconds=b.total if b else 0.0,
                new_seconds=n.total if n else 0.0,
                classification=(n or b).classification,
                counters=counters,
            )
        )
    deltas.sort(key=lambda pd: pd.delta, reverse=True)
    return TraceDiff(
        device=spec.name,
        base_total=sum(ph.total for ph in base_phases.values()),
        new_total=sum(ph.total for ph in new_phases.values()),
        phases=deltas,
    )


def render_diff(diff: TraceDiff, *, width: int = 44) -> str:
    """Text table, worst regression first, with counter explanations."""
    lines = [
        f"device: {diff.device}"
        f"  base {diff.base_total:.3e}s -> new {diff.new_total:.3e}s"
        f" (x{diff.new_total / diff.base_total:.3f})"
        if diff.base_total
        else f"device: {diff.device}  base 0s -> new {diff.new_total:.3e}s"
    ]
    lines.append(
        f"{'phase':<{width}} {'base':>11} {'new':>11} {'delta':>11} {'ratio':>7}"
    )
    for pd in diff.phases:
        ratio = f"x{pd.ratio:.2f}" if pd.ratio != float("inf") else "new"
        lines.append(
            f"{pd.phase:<{width}} {pd.base_seconds:>11.3e}"
            f" {pd.new_seconds:>11.3e} {pd.delta:>+11.3e} {ratio:>7}"
        )
        if pd.delta:
            lines.append(f"{'':<{width}}   {pd.explain()}")
    top = diff.top_regression
    if top is not None:
        lines.append(
            f"top regressed phase: {top.phase}"
            f" ({top.delta:+.3e}s, x{top.ratio:.3f}, {top.classification};"
            f" {top.explain()})"
        )
    else:
        lines.append("no phase regressed")
    return "\n".join(lines)
