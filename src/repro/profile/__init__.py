"""Kernel-grain profiling: per-phase time attribution and trace diffing.

The paper's performance story (§5, Figs. 5-14) is an *attribution*
argument — ECL-SCC wins because it launches few kernels, moves few
bytes, and needs no atomics.  This package makes that reasoning
machine-checkable for the reproduction:

* :func:`attach_ledger` — records every
  :class:`~repro.device.VirtualDevice` charge as a per-phase
  :class:`~repro.trace.LaunchRecord` on the active tracer (NullTracer
  keeps the zero-overhead path);
* :func:`build_profile` / :func:`profile_run` — apply the
  :mod:`repro.device.costmodel` per launch to produce a
  :class:`ProfileReport` whose per-phase seconds sum to
  ``VirtualDevice.seconds``, each phase classified as
  launch-overhead- / irregular-bandwidth- / streaming- / atomic- /
  serial-bound;
* :func:`diff_traces` — explain a regression between two JSONL traces
  as per-phase counter/time deltas (the bench-regression gate prints
  the top regressed phase from it);
* :func:`profile_cluster` — per-rank profiles of distributed runs with
  a straggler/imbalance summary;
* ``repro profile <workload>`` / ``repro trace diff A B`` on the CLI.

See ``docs/observability.md`` §"Profiling and attribution".
"""

from .ledger import LaunchLedger, attach_ledger
from .attribution import (
    CLASSIFICATIONS,
    PhaseProfile,
    aggregate_counters,
    attribute_launches,
)
from .report import (
    ProfileReport,
    build_profile,
    profile_run,
    render_profile,
    to_prometheus,
)
from .diff import PhaseDelta, TraceDiff, diff_traces, render_diff
from .cluster import ClusterProfile, profile_cluster, render_cluster_profile

__all__ = [
    "LaunchLedger",
    "attach_ledger",
    "CLASSIFICATIONS",
    "PhaseProfile",
    "aggregate_counters",
    "attribute_launches",
    "ProfileReport",
    "build_profile",
    "profile_run",
    "render_profile",
    "to_prometheus",
    "PhaseDelta",
    "TraceDiff",
    "diff_traces",
    "render_diff",
    "ClusterProfile",
    "profile_cluster",
    "render_cluster_profile",
]
