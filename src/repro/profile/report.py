"""Profile reports: build, render, and export per-phase attributions.

:func:`build_profile` turns a traced run (its launch ledger + device
spec) into a :class:`ProfileReport`; :func:`profile_run` is the
one-liner for an :class:`~repro.results.AlgoResult` or
:class:`~repro.bench.RunResult`.  Reports export as JSON
(:meth:`ProfileReport.to_json`) and as a Prometheus text exposition
(:func:`to_prometheus`) for dashboards; ``repro profile <workload>``
wraps the whole pipeline on the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..device.costmodel import TERM_NAMES, CostModel
from ..device.spec import DeviceSpec
from ..errors import AlgorithmError
from ..trace.records import Trace
from .attribution import (
    CLASSIFICATIONS,
    PhaseProfile,
    aggregate_counters,
    attribute_launches,
)

__all__ = [
    "ProfileReport",
    "build_profile",
    "profile_run",
    "render_profile",
    "to_prometheus",
]


@dataclass
class ProfileReport:
    """Per-phase attribution of one run's modelled device time."""

    device: str
    working_set_bytes: float
    device_seconds: float
    phases: "List[PhaseProfile]"
    meta: "Dict[str, Any]" = field(default_factory=dict)

    @property
    def attributed_seconds(self) -> float:
        return sum(ph.total for ph in self.phases)

    @property
    def unattributed_seconds(self) -> float:
        """Residual vs the device total (float rounding on a complete
        ledger; larger when parts of the run were not ledgered)."""
        return self.device_seconds - self.attributed_seconds

    @property
    def binding(self) -> str:
        """Whole-run classification: the dominant resource across phases."""
        totals = {t: 0.0 for t in TERM_NAMES}
        for ph in self.phases:
            for t in TERM_NAMES:
                totals[t] += ph.seconds[t]
        best, best_s = None, 0.0
        for t in TERM_NAMES:
            if totals[t] > best_s:
                best, best_s = t, totals[t]
        return CLASSIFICATIONS[best] if best is not None else "idle"

    def phase(self, name: str) -> PhaseProfile:
        """Look up a phase by its ``/``-joined path name (or last segment
        when unambiguous)."""
        matches = [ph for ph in self.phases if ph.name == name]
        if not matches:
            matches = [ph for ph in self.phases if ph.path and ph.path[-1] == name]
        if len(matches) != 1:
            known = sorted(ph.name for ph in self.phases)
            raise KeyError(f"phase {name!r} matches {len(matches)} of {known}")
        return matches[0]

    def to_dict(self) -> "dict[str, Any]":
        return {
            "device": self.device,
            "working_set_bytes": self.working_set_bytes,
            "device_seconds": self.device_seconds,
            "attributed_seconds": self.attributed_seconds,
            "binding": self.binding,
            "meta": dict(self.meta),
            "phases": [ph.to_dict() for ph in self.phases],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def build_profile(
    trace: Trace,
    spec: DeviceSpec,
    *,
    working_set_bytes: float = 0.0,
    device_seconds: "float | None" = None,
    meta: "Dict[str, Any] | None" = None,
) -> ProfileReport:
    """Attribute *trace*'s launch ledger against *spec*.

    ``device_seconds`` is the reference whole-run total (pass
    ``VirtualDevice.seconds`` / ``RunResult.model_seconds``); when
    omitted it is recomputed from the aggregated ledger, which equals the
    device total whenever the ledger covers the whole run.
    """
    phases = attribute_launches(
        trace, spec, working_set_bytes=working_set_bytes
    )
    if device_seconds is None:
        device_seconds = CostModel(spec).estimate(
            aggregate_counters(trace.launches),
            working_set_bytes=working_set_bytes,
        ).total
    return ProfileReport(
        device=spec.name,
        working_set_bytes=float(working_set_bytes),
        device_seconds=float(device_seconds),
        phases=phases,
        meta=dict(meta or {}),
    )


def profile_run(result, *, signatures: "int | None" = None) -> ProfileReport:
    """Build a :class:`ProfileReport` for a traced run result.

    Accepts an :class:`~repro.results.AlgoResult` (``device`` is the
    :class:`~repro.device.VirtualDevice`) or a
    :class:`~repro.bench.RunResult` (``device`` is the spec name); the
    run must have been executed with a recording tracer so the ledger
    is populated.
    """
    trace = getattr(result, "trace", None)
    if trace is None:
        raise AlgorithmError(
            "profile_run needs a traced run: pass tracer=Tracer() to the"
            " algorithm (the ledger only records under a recording tracer)"
        )
    dev = getattr(result, "device", None)
    meta: "Dict[str, Any]" = dict(trace.meta)
    if hasattr(dev, "spec"):  # AlgoResult carrying a VirtualDevice
        spec = dev.spec
        working_set = dev.working_set_bytes
        seconds = dev.seconds
    else:  # RunResult: device is the spec name, counters are a snapshot
        from ..device.spec import device_by_name

        from ..bench.runners import _SIGNATURE_ARRAYS
        from ..device.costmodel import working_set_of_graph

        spec = device_by_name(dev)
        if signatures is None:
            signatures = _SIGNATURE_ARRAYS.get(result.algorithm, 1)
        working_set = working_set_of_graph(
            result.num_vertices, result.num_edges, signatures
        )
        seconds = result.model_seconds
        meta.setdefault("algorithm", result.algorithm)
    meta.setdefault("device", spec.name)
    return build_profile(
        trace,
        spec,
        working_set_bytes=working_set,
        device_seconds=seconds,
        meta=meta,
    )


def render_profile(report: ProfileReport, *, width: int = 44) -> str:
    """Text table: one row per phase, widest first the way it ran."""
    lines = [
        f"device: {report.device}"
        f"  (working set {report.working_set_bytes / 1e6:.2f} MB)"
    ]
    if report.meta:
        keys = ("algorithm", "workload", "engine", "backend")
        shown = {k: report.meta[k] for k in keys if report.meta.get(k)}
        if shown:
            lines.append(
                "run: " + ", ".join(f"{k}={v}" for k, v in shown.items())
            )
    lines.append(
        f"{'phase':<{width}} {'launches':>8} {'rounds':>6}"
        f" {'seconds':>11} {'share':>6}  classification"
    )
    total = report.device_seconds or 1.0
    for ph in report.phases:
        lines.append(
            f"{ph.name:<{width}} {ph.launches:>8} {ph.rounds:>6}"
            f" {ph.total:>11.3e} {ph.total / total:>6.1%}"
            f"  {ph.classification}"
        )
    lines.append(
        f"{'total attributed':<{width}} {'':>8} {'':>6}"
        f" {report.attributed_seconds:>11.3e}"
        f" {report.attributed_seconds / total:>6.1%}  binding:"
        f" {report.binding}"
    )
    lines.append(f"device_seconds: {report.device_seconds:.6e}")
    return "\n".join(lines)


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(report: ProfileReport, *, prefix: str = "repro_profile") -> str:
    """Prometheus text exposition (one gauge sample per phase x resource)."""
    lines = [
        f"# HELP {prefix}_phase_seconds Attributed model seconds"
        " per phase and resource",
        f"# TYPE {prefix}_phase_seconds gauge",
    ]
    for ph in report.phases:
        phase = _prom_escape(ph.name)
        for term in TERM_NAMES:
            lines.append(
                f'{prefix}_phase_seconds{{phase="{phase}",resource="{term}"}}'
                f" {ph.seconds[term]:.9e}"
            )
    lines.append(
        f"# HELP {prefix}_phase_launches Kernel launches per phase"
    )
    lines.append(f"# TYPE {prefix}_phase_launches gauge")
    for ph in report.phases:
        lines.append(
            f'{prefix}_phase_launches{{phase="{_prom_escape(ph.name)}"}}'
            f" {ph.launches}"
        )
    lines.append(
        f"# HELP {prefix}_device_seconds Whole-run modelled seconds"
    )
    lines.append(f"# TYPE {prefix}_device_seconds gauge")
    lines.append(f"{prefix}_device_seconds {report.device_seconds:.9e}")
    return "\n".join(lines) + "\n"
