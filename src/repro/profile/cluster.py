"""Per-rank profiles of distributed (BSP) runs.

The shared-memory profile attributes device seconds to span paths; a
BSP run's analogue is per-*superstep-label* critical paths plus the rank
imbalance picture: how much of the machine sat idle at barriers waiting
for the slowest (possibly straggling) rank.  Built from the
:class:`~repro.distributed.cluster.SuperstepRecord` list every
:class:`~repro.distributed.cluster.VirtualCluster` now keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["ClusterProfile", "profile_cluster", "render_cluster_profile"]

#: a rank whose busy time exceeds the mean by this factor is reported as
#: a straggler (matches mild ClusterSpec.stragglers factors).
STRAGGLER_FACTOR = 1.05


@dataclass
class ClusterProfile:
    """Per-phase and per-rank accounting of one distributed run."""

    ranks: int
    phases: "Dict[str, dict]"          # label -> {steps, seconds, ...}
    rank_seconds: "List[float]"        # per-rank busy seconds, whole run
    critical_seconds: float            # sum of superstep critical paths
    backoff_seconds: float = 0.0
    meta: "Dict[str, object]" = field(default_factory=dict)

    @property
    def imbalance(self) -> float:
        """max/mean of per-rank busy seconds; 1.0 = perfectly balanced."""
        mean = sum(self.rank_seconds) / max(len(self.rank_seconds), 1)
        return max(self.rank_seconds) / mean if mean > 0 else 1.0

    @property
    def slowest_rank(self) -> int:
        return int(np.argmax(self.rank_seconds)) if self.rank_seconds else 0

    @property
    def stragglers(self) -> "list[int]":
        mean = sum(self.rank_seconds) / max(len(self.rank_seconds), 1)
        if mean <= 0:
            return []
        return [
            r
            for r, s in enumerate(self.rank_seconds)
            if s > STRAGGLER_FACTOR * mean
        ]

    @property
    def idle_fraction(self) -> float:
        """Fraction of the machine's barrier-synchronized time spent
        idle (ranks waiting for the per-step critical path)."""
        wall = self.ranks * self.critical_seconds
        if wall <= 0:
            return 0.0
        return 1.0 - sum(self.rank_seconds) / wall

    def to_dict(self) -> "dict":
        return {
            "ranks": self.ranks,
            "phases": {k: dict(v) for k, v in self.phases.items()},
            "rank_seconds": list(self.rank_seconds),
            "critical_seconds": self.critical_seconds,
            "backoff_seconds": self.backoff_seconds,
            "imbalance": self.imbalance,
            "slowest_rank": self.slowest_rank,
            "stragglers": self.stragglers,
            "idle_fraction": self.idle_fraction,
            "meta": dict(self.meta),
        }


def profile_cluster(cluster, *, meta: "Dict[str, object] | None" = None) -> ClusterProfile:
    """Profile a finished :class:`~repro.distributed.cluster.VirtualCluster`.

    Groups its superstep records by label into per-phase critical-path
    seconds and accumulates each rank's busy time for the imbalance and
    straggler summary.
    """
    r = cluster.spec.num_ranks
    busy = np.zeros(r, dtype=np.float64)
    phases: "Dict[str, dict]" = {}
    critical = 0.0
    for step in cluster.step_records:
        busy += step.rank_seconds
        critical += step.seconds
        ph = phases.get(step.label)
        if ph is None:
            ph = phases[step.label] = {
                "steps": 0,
                "seconds": 0.0,
                "compute_seconds": 0.0,
                "latency_seconds": 0.0,
                "bandwidth_seconds": 0.0,
            }
        ph["steps"] += 1
        ph["seconds"] += step.seconds
        ph["compute_seconds"] += step.compute
        ph["latency_seconds"] += step.latency
        ph["bandwidth_seconds"] += step.bandwidth
    return ClusterProfile(
        ranks=r,
        phases=phases,
        rank_seconds=[float(s) for s in busy],
        critical_seconds=critical,
        backoff_seconds=cluster.backoff_seconds,
        meta=dict(meta or {}),
    )


def render_cluster_profile(profile: ClusterProfile, *, width: int = 20) -> str:
    """Text summary: per-phase critical paths, then the rank picture."""
    lines = [
        f"{profile.ranks} ranks,"
        f" critical path {profile.critical_seconds:.3e}s"
        + (
            f" (+{profile.backoff_seconds:.3e}s retry backoff)"
            if profile.backoff_seconds
            else ""
        )
    ]
    lines.append(
        f"{'phase':<{width}} {'steps':>6} {'seconds':>11}"
        f" {'compute':>11} {'latency':>11} {'bandwidth':>11}"
    )
    for label, ph in profile.phases.items():
        lines.append(
            f"{label:<{width}} {ph['steps']:>6} {ph['seconds']:>11.3e}"
            f" {ph['compute_seconds']:>11.3e} {ph['latency_seconds']:>11.3e}"
            f" {ph['bandwidth_seconds']:>11.3e}"
        )
    lines.append(
        f"imbalance x{profile.imbalance:.3f}"
        f" (slowest rank {profile.slowest_rank};"
        f" idle fraction {profile.idle_fraction:.1%})"
    )
    if profile.stragglers:
        per_rank = ", ".join(
            f"r{r}={profile.rank_seconds[r]:.3e}s" for r in profile.stragglers
        )
        lines.append(f"stragglers: {per_rank}")
    return "\n".join(lines)
