"""The per-launch device ledger.

:func:`attach_ledger` wires a :class:`~repro.device.VirtualDevice` to a
recording :class:`~repro.trace.Tracer`: every subsequent
``launch()``/``work()``/``serial()`` charge is recorded as one
:class:`~repro.trace.LaunchRecord` on ``tracer.trace.launches``, carrying
the counter *deltas* of that single charge plus the span path that was
open when it happened.  The deltas are what make attribution exact:
summing every record reproduces the device's final counter snapshot bit
for bit, so per-phase cost terms sum to the whole-run estimate.

With a :class:`~repro.trace.NullTracer` (or ``tracer=None``) nothing is
attached and the device keeps its zero-overhead accounting path — one
``ledger is None`` check per charge, no snapshots, no allocation.
"""

from __future__ import annotations

from ..trace.records import LaunchRecord
from ..trace.tracer import Tracer

__all__ = ["LaunchLedger", "attach_ledger"]

#: counter fields whose per-charge deltas are recorded, matching
#: :meth:`~repro.device.KernelCounters.snapshot` keys exactly.
_DELTA_FIELDS = (
    "kernel_launches",
    "global_barriers",
    "edge_work",
    "vertex_work",
    "bytes_moved",
    "atomics",
    "serial_work",
    "rounds",
    "blocks_scheduled",
    "bytes_streamed",
)


class LaunchLedger:
    """Records one :class:`~repro.trace.LaunchRecord` per device charge.

    Owned by a :class:`~repro.device.VirtualDevice` (its ``ledger``
    attribute); the records land on the tracer's ``trace.launches`` so
    they serialize with the rest of the trace.
    """

    __slots__ = ("tracer", "records")

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self.records = tracer.trace.launches

    def record(
        self, kind: str, before: "dict[str, int]", after: "dict[str, int]"
    ) -> None:
        """Append the delta between two counter snapshots as one record."""
        self.records.append(
            LaunchRecord(
                seq=len(self.records),
                kind=kind,
                path=self.tracer.current_path(),
                span_id=self.tracer.current_span_id,
                **{f: after[f] - before[f] for f in _DELTA_FIELDS},
            )
        )


def attach_ledger(device, tracer) -> "LaunchLedger | None":
    """Attach a launch ledger to *device* when *tracer* is recording.

    Returns the attached :class:`LaunchLedger`, or ``None`` (leaving the
    device untouched) when *device* is ``None``, *tracer* is ``None``, or
    *tracer* is a disabled :class:`~repro.trace.NullTracer` — the
    zero-overhead contract of the tracing layer extends to profiling.

    Re-attaching the same tracer (e.g. the ``randomize_ids`` recursion in
    :func:`~repro.core.eclscc.ecl_scc`) is idempotent in effect: the new
    ledger appends to the same ``trace.launches`` list.
    """
    if device is None or tracer is None or not tracer.enabled:
        return None
    ledger = LaunchLedger(tracer)
    device.ledger = ledger
    return ledger
