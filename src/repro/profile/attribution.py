"""Per-phase time attribution and roofline classification.

Applies the :mod:`repro.device.costmodel` arithmetic to every
:class:`~repro.trace.LaunchRecord` in a trace and aggregates the
resulting per-term seconds by span path.  Because every cost term is
linear in its counter (:func:`~repro.device.costmodel.cost_terms` is the
single shared implementation), the per-phase seconds sum to the
whole-run :attr:`~repro.device.VirtualDevice.seconds` exactly up to
float rounding — the property ``tests/test_profile.py`` checks at 1e-9
relative tolerance.

The one non-linear part of the model, the CPU memory-vs-compute
roofline, is resolved *globally* before attribution: the winner is
decided from the aggregated counters (the same decision
:meth:`~repro.device.CostModel.estimate` makes on the run totals), then
the losing term is zeroed in every record.  Attributing the roofline per
record instead would let small phases flip sides and break the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..device.costmodel import TERM_NAMES, cost_terms
from ..device.counters import KernelCounters
from ..device.spec import DeviceSpec
from ..trace.records import LaunchRecord, Trace

__all__ = [
    "PhaseProfile",
    "CLASSIFICATIONS",
    "attribute_launches",
    "aggregate_counters",
]

#: cost-model term -> phase classification label (paper §5 vocabulary).
CLASSIFICATIONS = {
    "launch": "launch-overhead-bound",
    "irregular": "irregular-bandwidth-bound",
    "streamed": "streaming-bound",
    "atomic": "atomic-bound",
    "serial": "serial-bound",
    "compute": "compute-bound",
}

#: counter fields aggregated per phase (snapshot() keys).
_COUNTER_FIELDS = (
    "kernel_launches",
    "global_barriers",
    "edge_work",
    "vertex_work",
    "bytes_moved",
    "atomics",
    "serial_work",
    "rounds",
    "blocks_scheduled",
    "bytes_streamed",
)


@dataclass
class PhaseProfile:
    """Attributed cost of one span path (all launches sharing the path)."""

    path: "Tuple[str, ...]"
    records: int = 0
    counters: "Dict[str, int]" = field(
        default_factory=lambda: {f: 0 for f in _COUNTER_FIELDS}
    )
    seconds: "Dict[str, float]" = field(
        default_factory=lambda: {t: 0.0 for t in TERM_NAMES}
    )
    rounds: int = 0
    #: adaptive-scheduler picks landing in this phase, by policy name
    #: (folded from ``scheduler:pick`` counter events; empty for the
    #: static engines)
    decisions: "Dict[str, int]" = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Readable path label; ``(untraced)`` for charges outside spans."""
        return "/".join(self.path) if self.path else "(untraced)"

    @property
    def launches(self) -> int:
        return self.counters["kernel_launches"]

    @property
    def total(self) -> float:
        return sum(self.seconds[t] for t in TERM_NAMES)

    @property
    def classification(self) -> str:
        """Dominant resource of this phase (``idle`` when nothing charged)."""
        best, best_s = None, 0.0
        for term in TERM_NAMES:
            s = self.seconds[term]
            if s > best_s:
                best, best_s = term, s
        return CLASSIFICATIONS[best] if best is not None else "idle"

    def to_dict(self) -> "dict":
        return {
            "phase": self.name,
            "path": list(self.path),
            "records": self.records,
            "launches": self.launches,
            "rounds": self.rounds,
            "decisions": dict(self.decisions),
            "seconds": dict(self.seconds),
            "total_seconds": self.total,
            "classification": self.classification,
            "counters": {k: v for k, v in self.counters.items() if v},
        }


def aggregate_counters(launches: "list[LaunchRecord]") -> KernelCounters:
    """Sum record deltas into one :class:`~repro.device.KernelCounters`.

    With a complete ledger this reproduces the device's final snapshot
    bit for bit (checked in tests) — the bridge between per-launch
    records and whole-run estimates.
    """
    agg = KernelCounters()
    for rec in launches:
        for f in _COUNTER_FIELDS:
            setattr(agg, f, getattr(agg, f) + getattr(rec, f))
    return agg


def _roofline_loser(
    agg: KernelCounters, spec: DeviceSpec, working_set_bytes: float
) -> "str | None":
    """The globally-losing side of the CPU roofline, or None on GPUs.

    Mirrors :meth:`~repro.device.CostModel.estimate`: on CPUs the larger
    of compute and (irregular + streamed) memory binds and the other is
    dropped; ties go to compute, so memory loses.
    """
    if spec.kind == "gpu":
        return None
    t = cost_terms(agg, spec, working_set_bytes=working_set_bytes)
    if t["compute"] >= t["irregular"] + t["streamed"]:
        return "memory"
    return "compute"


def attribute_launches(
    trace: Trace,
    spec: DeviceSpec,
    *,
    working_set_bytes: float = 0.0,
) -> "list[PhaseProfile]":
    """Attribute every launch record of *trace* to its span path.

    Returns the phases in first-appearance order.  Phase-2 round counts
    are folded in from the trace's ``relaxation-round`` counter events,
    and the adaptive scheduler's per-policy pick counts from its
    ``scheduler:pick`` events (both are analysis quantities, not costed
    charges, so they ride on the event stream rather than the ledger).
    """
    loser = _roofline_loser(
        aggregate_counters(trace.launches), spec, working_set_bytes
    )
    phases: "dict[Tuple[str, ...], PhaseProfile]" = {}
    for rec in trace.launches:
        ph = phases.get(rec.path)
        if ph is None:
            ph = phases[rec.path] = PhaseProfile(path=rec.path)
        ph.records += 1
        for f in _COUNTER_FIELDS:
            ph.counters[f] += getattr(rec, f)
        terms = cost_terms(rec, spec, working_set_bytes=working_set_bytes)
        if loser == "memory":
            terms["irregular"] = terms["streamed"] = 0.0
        elif loser == "compute":
            terms["compute"] = 0.0
        for t in TERM_NAMES:
            ph.seconds[t] += terms[t]
    # per-phase round counts from the event stream
    span_path = {s.span_id: None for s in trace.spans}
    if trace.spans:
        for path, span in trace.iter_paths():
            span_path[span.span_id] = path
    for ev in trace.events:
        if ev.kind != "counter" or ev.name not in (
            "relaxation-round",
            "scheduler:pick",
        ):
            continue
        path = span_path.get(ev.span_id)
        if path is None:
            continue
        ph = phases.get(path)
        if ph is None:
            ph = phases[path] = PhaseProfile(path=path)
        if ev.name == "relaxation-round":
            ph.rounds += int(ev.value)
        else:
            policy = str(ev.attrs.get("policy", "?"))
            ph.decisions[policy] = ph.decisions.get(policy, 0) + int(ev.value)
    return list(phases.values())
