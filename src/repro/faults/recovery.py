"""Checkpoint/restart, retry backoff, and verification-guarded healing.

Three recovery mechanisms, matched to the three corrupting fault kinds
of :mod:`repro.faults.plan`:

* **Checkpoint/restart** (engine crashes) — :class:`CheckpointStore`
  snapshots the ECL-SCC outer-loop state (labels, active mask, edge
  worklist, round totals, device counters) every ``checkpoint_every``
  iterations.  A crash restores the latest snapshot and the loop
  re-executes from there.  Counter restoration discards the wasted
  work's charges, and the re-executed iterations recharge identically,
  so a crashed-and-restored run reproduces the fault-free run's labels
  *and* counter snapshot bit for bit (the restore itself is charged to
  ``counters.notes``, which :meth:`~repro.device.KernelCounters.snapshot`
  excludes by design).
* **Bounded retry with exponential backoff** (rank crashes) —
  :func:`backoff_seconds` computes attempt *k*'s wait as
  ``backoff_base_us * 2**k``, floored by the straggler-adjusted duration
  of the last superstep (the principled timeout basis: a retry cannot
  observe failure faster than the slowest surviving rank computes).
* **Verification-guarded self-healing** (bit flips) —
  :func:`heal_labels` asks :func:`repro.analysis.verify.fixed_point_offenders`
  for the vertex set on which the labelling is *not* a fixed point of
  max-propagation, re-runs ECL-SCC on the induced offender subgraph, and
  repeats until the invariant holds.  The offender set is always a union
  of complete true SCCs (see ``docs/robustness.md`` §4), so healing the
  induced subgraph in isolation is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..device.counters import KernelCounters
from ..errors import FaultError
from .inject import FaultInjector

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "backoff_seconds",
    "heal_labels",
    "MAX_HEAL_PASSES",
]

#: self-healing gives up (raises FaultError) after this many passes.
MAX_HEAL_PASSES = 3


def _copy_counters(counters: KernelCounters) -> KernelCounters:
    return replace(counters, notes=dict(counters.notes))


@dataclass
class Checkpoint:
    """One frozen outer-loop state (taken at the *top* of an iteration)."""

    outer: int                       # iterations fully completed
    labels: np.ndarray
    active: np.ndarray
    wl_src: np.ndarray
    wl_dst: np.ndarray
    wl_generation: int
    total_rounds: int
    completed_per_iteration: "list[int]"
    counters: KernelCounters
    #: launch-ledger length at checkpoint time; restore truncates the
    #: ledger here so profile attribution matches the restored counters
    ledger_len: int = 0
    # reuse-engine (frontier/adaptive) extras: the partial re-init means
    # signatures and the invalidation set are live cross-iteration state
    # (dense engines rebuild both from scratch each iteration, so they
    # skip this)
    sig_in: "np.ndarray | None" = None
    sig_out: "np.ndarray | None" = None
    invalidated: "np.ndarray | None" = None
    #: adaptive-engine extra: the scheduler's tallies and decision-log
    #: length (:meth:`~repro.engine.scheduler.AdaptiveScheduler.state_snapshot`)
    #: — restoring rewinds the decision log with the counters, so a
    #: crash-restore replays the fault-free run's decision sequence
    scheduler_state: "dict | None" = None

    @property
    def nbytes(self) -> int:
        total = (
            self.labels.nbytes
            + self.active.nbytes
            + self.wl_src.nbytes
            + self.wl_dst.nbytes
        )
        if self.sig_in is not None:
            total += self.sig_in.nbytes + self.sig_out.nbytes
        if self.invalidated is not None:
            total += self.invalidated.nbytes
        return total


class CheckpointStore:
    """Holds the latest checkpoint of one ECL-SCC run.

    The driver saves at the top of every iteration where
    :meth:`due` is true (plus a genesis checkpoint before iteration 1, so
    a crash is always recoverable), and restores on
    :meth:`FaultInjector.crash_due`.  Saves are charged to the device as
    a streamed copy-out of the checkpointed arrays; because the counter
    copy inside the checkpoint is taken *before* that charge, restoring
    and re-executing reproduces the exact same charge sequence.
    """

    def __init__(self, cadence: int, *, injector: "FaultInjector | None" = None):
        self.cadence = max(1, int(cadence))
        self.injector = injector
        self._latest: "Checkpoint | None" = None

    def due(self, outer_completed: int) -> bool:
        """True when a checkpoint should be taken after *outer_completed*
        iterations (0 = genesis, always saved)."""
        return outer_completed % self.cadence == 0

    def save(self, *, outer, labels, active, wl, total_rounds,
             completed_per_iteration, device, sigs=None,
             invalidated=None, scheduler=None) -> Checkpoint:
        ledger = getattr(device, "ledger", None)
        ckpt = Checkpoint(
            outer=int(outer),
            labels=labels.copy(),
            active=active.copy(),
            wl_src=wl.src.copy(),
            wl_dst=wl.dst.copy(),
            wl_generation=wl.generation,
            total_rounds=int(total_rounds),
            completed_per_iteration=list(completed_per_iteration),
            counters=_copy_counters(device.counters),
            ledger_len=len(ledger.records) if ledger is not None else 0,
            sig_in=sigs.sig_in.copy() if sigs is not None else None,
            sig_out=sigs.sig_out.copy() if sigs is not None else None,
            invalidated=invalidated.copy() if invalidated is not None else None,
            scheduler_state=(
                scheduler.state_snapshot() if scheduler is not None else None
            ),
        )
        self._latest = ckpt
        # copy-out of the checkpointed state: sequential streaming traffic
        # (charged through the device so the launch ledger sees it too)
        device.launch(
            vertices=labels.size, bytes_per_vertex=0,
            streamed_bytes=ckpt.nbytes,
        )
        device.counters.note("faults:checkpoint_bytes", float(ckpt.nbytes))
        if self.injector is not None:
            self.injector.record_checkpoint(ckpt.outer, ckpt.nbytes)
        return ckpt

    @property
    def latest(self) -> "Checkpoint | None":
        return self._latest

    def restore(self, *, labels, active, wl, device, crashed_at: int,
                sigs=None, invalidated=None, scheduler=None) -> Checkpoint:
        """Roll run state back to the latest checkpoint (in place).

        Device counters are *replaced* by the checkpoint's copy: the
        crashed iterations' charges are discarded and will be recharged
        by re-execution.  The restore's own copy-in traffic goes to
        ``counters.notes`` only, keeping counter snapshots bit-identical
        with a fault-free run of the same plan.  When the checkpoint
        carries frontier-engine state (signatures + invalidation set),
        passing ``sigs``/``invalidated`` rolls those back too, so the
        re-executed iterations recharge the same partial work.
        """
        ckpt = self._latest
        if ckpt is None:
            raise FaultError("no checkpoint available to restore")
        labels[:] = ckpt.labels
        active[:] = ckpt.active
        wl.src = ckpt.wl_src.copy()
        wl.dst = ckpt.wl_dst.copy()
        wl.generation = ckpt.wl_generation
        if sigs is not None and ckpt.sig_in is not None:
            sigs.sig_in[:] = ckpt.sig_in
            sigs.sig_out[:] = ckpt.sig_out
        if invalidated is not None and ckpt.invalidated is not None:
            invalidated[:] = ckpt.invalidated
        if scheduler is not None and ckpt.scheduler_state is not None:
            scheduler.restore_state(ckpt.scheduler_state)
        device.counters = _copy_counters(ckpt.counters)
        ledger = getattr(device, "ledger", None)
        if ledger is not None:
            # drop the crashed iterations' launch records alongside their
            # counter charges; re-execution re-records both identically
            del ledger.records[ckpt.ledger_len:]
        device.counters.note("faults:restore_bytes", float(ckpt.nbytes))
        if self.injector is not None:
            self.injector.record_restore(crashed_at, ckpt.outer)
        return ckpt


def backoff_seconds(
    plan, attempt: int, *, floor_s: float = 0.0, rng=None
) -> float:
    """Wait before retry *attempt* (0-based): exponential, floored.

    The floor is the straggler-adjusted duration of the last superstep —
    a retry cannot detect failure faster than the slowest surviving rank
    finishes its local compute.

    With ``rng`` (a plan-seeded ``numpy`` generator) and a plan carrying
    ``backoff_jitter > 0``, the exponential term is scaled by one seeded
    uniform draw from ``[1 - jitter, 1 + jitter]`` so concurrent retries
    de-synchronize deterministically (:mod:`repro.serve` passes its
    service RNG here).  When ``rng`` is omitted or the plan's jitter is
    zero, *no draw happens* and the result is bit-identical to the
    jitter-free formula — existing callers are unaffected.
    """
    base = plan.backoff_base_us * 1e-6 * (2.0 ** attempt)
    jitter = getattr(plan, "backoff_jitter", 0.0)
    if rng is not None and jitter > 0.0:
        base *= 1.0 + jitter * (2.0 * float(rng.random()) - 1.0)
    return max(base, floor_s)


def heal_labels(
    graph,
    labels: np.ndarray,
    *,
    device,
    options=None,
    backend=None,
    injector: "FaultInjector | None" = None,
    tracer=None,
    max_passes: int = MAX_HEAL_PASSES,
) -> np.ndarray:
    """Repair *labels* in place until they verify as an SCC fixed point.

    Each pass computes the offender set (vertices whose labelling
    violates the max-propagation fixed-point invariant), re-runs ECL-SCC
    fault-free on the induced offender subgraph, and writes the repaired
    labels back.  Raises :class:`~repro.errors.FaultError` if the
    invariant still fails after ``max_passes`` passes (which would
    indicate a healing bug, not an injected fault — the offender set is
    a union of complete SCCs, so one pass normally suffices).
    """
    from ..analysis.verify import fixed_point_offenders
    from ..core.eclscc import ecl_scc  # lazy: core.eclscc imports repro.faults

    for _ in range(max_passes):
        offenders = fixed_point_offenders(graph, labels)
        if offenders.size == 0:
            return labels
        sub = _induced_subgraph(graph, offenders)
        heal_dev = type(device)(device.spec)
        sub_res = ecl_scc(
            sub, options=options, device=heal_dev, backend=backend,
            tracer=tracer,
        )
        labels[offenders] = offenders[sub_res.labels]
        device.counters.merge(heal_dev.counters)
        device.counters.note("faults:heal_vertices", float(offenders.size))
        if injector is not None:
            injector.record_heal(int(offenders.size), int(offenders.size))
    offenders = fixed_point_offenders(graph, labels)
    if offenders.size:
        raise FaultError(
            f"self-healing did not converge after {max_passes} passes;"
            f" {offenders.size} vertices still violate the fixed-point"
            " invariant"
        )
    return labels


def _induced_subgraph(graph, vertices: np.ndarray):
    """Induced subgraph on ascending *vertices*, renumbered 0..k-1."""
    from ..graph.csr import CSRGraph

    n = graph.num_vertices
    inv = np.full(n, -1, dtype=np.int64)
    inv[vertices] = np.arange(vertices.size, dtype=np.int64)
    src, dst = graph.edges()
    keep = (inv[src] >= 0) & (inv[dst] >= 0)
    return CSRGraph.from_edges(
        inv[src[keep]], inv[dst[keep]], int(vertices.size)
    )
