"""Deterministic fault injection and recovery (chaos testing).

The paper's robustness claim — monotone max-propagation tolerates racy,
unsynchronized signature updates — becomes *testable* here: a seeded
:class:`FaultPlan` describes what goes wrong, a :class:`FaultInjector`
makes every fault decision at a well-defined seam (engine Phase-2
propagation, label harvest, cluster exchange supersteps), and the
recovery machinery (checkpoint/restart, bounded superstep retry,
verification-guarded self-healing) absorbs the non-monotone kinds.
Run summaries surface as ``result.status`` / ``result.fault_report``;
see ``docs/robustness.md`` and the ``repro chaos`` CLI.
"""

from .inject import ExchangePerturbation, FaultEvent, FaultInjector, FaultReport
from .plan import (
    CORRUPTING_FAULT_KINDS,
    MONOTONE_FAULT_KINDS,
    PRESET_PLAN_NAMES,
    FaultPlan,
    preset_plan,
)
from .recovery import (
    MAX_HEAL_PASSES,
    Checkpoint,
    CheckpointStore,
    backoff_seconds,
    heal_labels,
)

__all__ = [
    "FaultPlan",
    "MONOTONE_FAULT_KINDS",
    "CORRUPTING_FAULT_KINDS",
    "PRESET_PLAN_NAMES",
    "preset_plan",
    "FaultEvent",
    "FaultReport",
    "FaultInjector",
    "ExchangePerturbation",
    "Checkpoint",
    "CheckpointStore",
    "backoff_seconds",
    "heal_labels",
    "MAX_HEAL_PASSES",
]
