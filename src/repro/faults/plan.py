"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *what* may go wrong during a run — which
fault sites fire, at what rates, and with what recovery knobs — without
saying anything about *when* in wall-clock terms: every random decision
is drawn from a ``numpy`` generator seeded by ``plan.seed``, so the same
plan on the same graph produces the same fault sequence, bit for bit.
Plans are plain frozen dataclasses and round-trip through JSON
(:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`), which is what
the ``repro chaos`` CLI loads.

Fault sites (see ``docs/robustness.md`` for the full fault model):

* **Engine layer** (ECL-SCC Phase 2) — ``stale_read_rate`` and
  ``lost_update_rate`` regress sampled signatures back to their
  phase-start snapshot, modelling the paper's non-atomic races: a stale
  read or a dropped write can only leave a signature at an *older valid*
  value, and the phase-start snapshot (identity) dominates every milder
  staleness.  These faults are **monotone**: max-propagation re-converges
  to the same fixed point, so final labels are provably unchanged.
* **Corruption** — ``bitflips`` flips random bits in the final
  ``v_in``/``v_out``-derived labels, modelling memory corruption.  These
  are *not* monotone and must be caught by the verification-guarded
  self-healing loop (:mod:`repro.faults.recovery`).
* **Crash/restart** — ``crash_iteration`` kills the outer loop once at
  that iteration; recovery restores the last periodic checkpoint
  (cadence ``checkpoint_every``).
* **Cluster layer** (:class:`~repro.distributed.cluster.VirtualCluster`
  supersteps) — ``message_drop_rate`` / ``message_dup_rate`` /
  ``message_delay_rate`` perturb the boundary exchange, and
  ``rank_crash_superstep`` crashes one rank, recovered by bounded
  superstep retry with exponential backoff and (optionally) failover.
* **Service layer** (:class:`~repro.serve.SccService` job execution) —
  ``worker_crash_rate`` kills an executing worker mid-attempt (the job
  fails and is retried with bounded backoff), and ``message_delay_rate``
  doubles as a per-attempt completion-delay probability.  Service-layer
  crashes never corrupt state: update jobs are checkpointed before
  execution and rolled back on a crash, so a retried attempt recomputes
  from the pre-attempt graph exactly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace

import numpy as np

from ..errors import FaultPlanError

__all__ = [
    "FaultPlan",
    "MONOTONE_FAULT_KINDS",
    "CORRUPTING_FAULT_KINDS",
    "PRESET_PLAN_NAMES",
    "preset_plan",
]

#: fault kinds that can never change final labels (only delay convergence).
MONOTONE_FAULT_KINDS = (
    "stale-read",
    "lost-update",
    "message-drop",
    "message-dup",
    "message-delay",
)

#: fault kinds that corrupt or lose state and require explicit recovery.
CORRUPTING_FAULT_KINDS = ("bit-flip", "crash", "rank-crash")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic chaos scenario (all decisions seeded, no clock).

    Attributes
    ----------
    seed:
        seed of the plan's private ``numpy`` RNG; two runs with the same
        plan inject the identical fault sequence.
    stale_read_rate:
        probability, per propagation epoch, that a stale-read fault
        regresses a sampled vertex set's signatures to the phase-start
        snapshot (monotone; labels provably unchanged).
    lost_update_rate:
        like ``stale_read_rate`` but modelling dropped signature writes.
    victim_fraction:
        fraction of eligible vertices a regression fault hits
        (at least one vertex when the fault fires).
    bitflips:
        number of single-bit corruptions injected into the final labels
        (caught and repaired by the verification guard).
    crash_iteration:
        outer iteration at which the engine run crashes once (None = no
        crash); recovery restores the latest checkpoint.
    checkpoint_every:
        checkpoint cadence in outer iterations (>= 1).
    message_drop_rate / message_dup_rate / message_delay_rate:
        per-exchange-superstep probabilities of dropping, duplicating,
        or delaying boundary-signature messages (drops charge a re-send;
        dups charge extra traffic; all three are monotone).
    rank_crash_superstep:
        global superstep index at which ``rank_crash_rank`` crashes
        (None = no rank crash).
    rank_crash_rank:
        which rank crashes.
    rank_recover_after:
        failed retry attempts before the rank comes back; if it exceeds
        ``max_retries`` the loss is permanent (failover or
        :class:`~repro.errors.RankLossError`).
    worker_crash_rate:
        per-execution-attempt probability that a :mod:`repro.serve`
        worker crashes mid-job (the attempt fails, its partial work is
        still charged, and the job is retried with bounded backoff).
    max_retries:
        bounded retry attempts — superstep retries for a crashed rank,
        and per-job retry attempts in :mod:`repro.serve`.
    backoff_base_us:
        base of the exponential retry backoff (attempt k waits
        ``backoff_base_us * 2**k`` microseconds, floored by the
        straggler-adjusted duration of the last superstep — the
        principled timeout basis).
    backoff_jitter:
        optional deterministic jitter fraction in ``[0, 1)`` applied by
        :func:`repro.faults.backoff_seconds` when the caller passes a
        plan-seeded RNG: attempt *k*'s wait is scaled by a seeded
        uniform draw from ``[1 - jitter, 1 + jitter]`` so concurrent
        retries de-synchronize.  ``0.0`` (the default) keeps the
        backoff sequence bit-identical to the jitter-free formula.
    failover:
        after a permanent rank loss, redistribute the dead rank's work
        across survivors (status ``"degraded"``) instead of raising.
    max_engine_faults / max_cluster_faults:
        hard budgets on injected faults so every faulted run terminates.
    """

    seed: int = 0
    # --- engine (Phase-2 race) faults ---------------------------------
    stale_read_rate: float = 0.0
    lost_update_rate: float = 0.0
    victim_fraction: float = 0.1
    # --- corruption + crash/restart -----------------------------------
    bitflips: int = 0
    crash_iteration: "int | None" = None
    checkpoint_every: int = 1
    # --- cluster (superstep) faults -----------------------------------
    message_drop_rate: float = 0.0
    message_dup_rate: float = 0.0
    message_delay_rate: float = 0.0
    rank_crash_superstep: "int | None" = None
    rank_crash_rank: int = 0
    rank_recover_after: int = 1
    # --- service (repro.serve) faults ---------------------------------
    worker_crash_rate: float = 0.0
    # --- recovery knobs ------------------------------------------------
    max_retries: int = 3
    backoff_base_us: float = 50.0
    backoff_jitter: float = 0.0
    failover: bool = True
    max_engine_faults: int = 16
    max_cluster_faults: int = 16

    def __post_init__(self) -> None:
        for name in (
            "stale_read_rate",
            "lost_update_rate",
            "message_drop_rate",
            "message_dup_rate",
            "message_delay_rate",
            "worker_crash_rate",
        ):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise FaultPlanError(f"{name} must be in [0, 1], got {v}")
        if not (0.0 <= self.backoff_jitter < 1.0):
            raise FaultPlanError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}"
            )
        if not (0.0 < self.victim_fraction <= 1.0):
            raise FaultPlanError(
                f"victim_fraction must be in (0, 1], got {self.victim_fraction}"
            )
        if self.bitflips < 0:
            raise FaultPlanError(f"bitflips must be >= 0, got {self.bitflips}")
        if self.checkpoint_every < 1:
            raise FaultPlanError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        for name in ("max_retries", "rank_recover_after"):
            if getattr(self, name) < 1:
                raise FaultPlanError(f"{name} must be >= 1")
        if self.backoff_base_us <= 0:
            raise FaultPlanError("backoff_base_us must be positive")
        for name in ("max_engine_faults", "max_cluster_faults"):
            if getattr(self, name) < 0:
                raise FaultPlanError(f"{name} must be >= 0")
        for name in ("crash_iteration", "rank_crash_superstep"):
            v = getattr(self, name)
            if v is not None and v < 1:
                raise FaultPlanError(f"{name} must be >= 1 or None, got {v}")
        if self.rank_crash_rank < 0:
            raise FaultPlanError("rank_crash_rank must be >= 0")

    # ------------------------------------------------------------------
    @property
    def is_monotone(self) -> bool:
        """True when the plan contains only label-preserving fault kinds."""
        return (
            self.bitflips == 0
            and self.crash_iteration is None
            and self.rank_crash_superstep is None
        )

    @property
    def has_engine_faults(self) -> bool:
        return (
            self.stale_read_rate > 0
            or self.lost_update_rate > 0
            or self.bitflips > 0
            or self.crash_iteration is not None
        )

    @property
    def has_cluster_faults(self) -> bool:
        return (
            self.message_drop_rate > 0
            or self.message_dup_rate > 0
            or self.message_delay_rate > 0
            or self.rank_crash_superstep is not None
        )

    @property
    def has_serve_faults(self) -> bool:
        """True when the plan perturbs the :mod:`repro.serve` layer
        (worker crashes or completion delays)."""
        return self.worker_crash_rate > 0 or self.message_delay_rate > 0

    def rng(self) -> np.random.Generator:
        """A fresh generator seeded by ``self.seed`` (the only RNG used)."""
        return np.random.default_rng(self.seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> "dict[str, object]":
        return asdict(self)

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown FaultPlan fields: {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    def to_json(self, *, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def monotone(cls, seed: int = 0, *, rate: float = 0.3) -> "FaultPlan":
        """The paper's race model: stale reads + lost updates only."""
        return cls(
            seed=seed,
            stale_read_rate=rate,
            lost_update_rate=rate,
            message_drop_rate=rate / 2,
            message_dup_rate=rate / 2,
            message_delay_rate=rate / 2,
        )

    @classmethod
    def chaos(cls, seed: int = 0) -> "FaultPlan":
        """Everything at once: races, corruption, crashes."""
        return cls(
            seed=seed,
            stale_read_rate=0.25,
            lost_update_rate=0.25,
            bitflips=2,
            crash_iteration=2,
            message_drop_rate=0.2,
            message_dup_rate=0.2,
            message_delay_rate=0.2,
            rank_crash_superstep=3,
        )

    @classmethod
    def serve_crash(cls, seed: int = 0, *, rate: float = 0.6) -> "FaultPlan":
        """Service-layer chaos: workers crash mid-job, jobs retry with
        jittered backoff (the ``repro serve`` chaos-matrix crash plan)."""
        return cls(seed=seed, worker_crash_rate=rate, backoff_jitter=0.25)

    @classmethod
    def serve_delay(cls, seed: int = 0, *, rate: float = 0.6) -> "FaultPlan":
        """Service-layer slowdowns: job completions are stochastically
        delayed (the ``repro serve`` chaos-matrix message-delay plan)."""
        return cls(seed=seed, message_delay_rate=rate, backoff_jitter=0.25)


#: every named preset, for CLIs and round-trip tests (name -> factory
#: taking the seed).
_PRESETS = {
    "monotone": FaultPlan.monotone,
    "chaos": FaultPlan.chaos,
    "serve-crash": FaultPlan.serve_crash,
    "serve-delay": FaultPlan.serve_delay,
}

PRESET_PLAN_NAMES = tuple(sorted(_PRESETS))


def preset_plan(name: str, seed: int = 0) -> FaultPlan:
    """Instantiate the named preset plan (see :data:`PRESET_PLAN_NAMES`)."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown preset plan {name!r}; known: {list(PRESET_PLAN_NAMES)}"
        ) from None
    return factory(seed)
