"""The :class:`FaultInjector`: seeded fault decisions at well-defined seams.

One injector instance accompanies one algorithm run.  The drivers call
its hooks at the injection seams — the ECL-SCC outer loop around Phase-2
propagation (engine faults), the label harvest (bit-flips), and the
``VirtualCluster`` exchange superstep (message faults, rank crashes).
Every injected fault is

* drawn from the plan's seeded RNG (deterministic, no wall clock),
* recorded as a :class:`FaultEvent` on the run's :class:`FaultReport`,
* emitted as a ``fault:*`` trace counter when a tracer is attached, and
* charged to the cost model (extra propagation rounds, re-sent
  messages, retry supersteps are all real counter/cluster updates; see
  ``docs/robustness.md`` §3 for the charging rules).

Recovery actions (checkpoint saves/restores, retries, self-healing
passes, failover) are recorded symmetrically as ``recovery:*`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..results import Status
from ..trace import NULL_TRACER, Tracer
from .plan import FaultPlan

__all__ = ["FaultEvent", "FaultReport", "FaultInjector", "ExchangePerturbation"]

#: stored-event cap; beyond it only the counts keep accumulating.
MAX_RECORDED_EVENTS = 256


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or recovery action."""

    kind: str            # e.g. "stale-read", "recovery:restore"
    site: str            # e.g. "engine:phase2", "cluster:exchange"
    step: int            # outer iteration / superstep index
    detail: "dict[str, object]" = field(default_factory=dict)

    def as_dict(self) -> "dict[str, object]":
        return {
            "kind": self.kind,
            "site": self.site,
            "step": self.step,
            "detail": dict(self.detail),
        }


@dataclass
class FaultReport:
    """What one faulted run observed and how it recovered.

    Attached to results as ``result.fault_report``; ``result.status``
    summarizes it (``"clean"`` / ``"recovered"`` / ``"degraded"``).
    """

    plan: FaultPlan
    events: "list[FaultEvent]" = field(default_factory=list)
    counts: "dict[str, int]" = field(default_factory=dict)
    events_dropped: int = 0
    checkpoints_saved: int = 0
    restores: int = 0
    retries: int = 0
    healed_vertices: int = 0
    heal_passes: int = 0
    failovers: int = 0

    @property
    def faults_injected(self) -> int:
        """Total injected faults (recovery actions not counted)."""
        return sum(
            v for k, v in self.counts.items() if not k.startswith("recovery:")
        )

    @property
    def recoveries(self) -> int:
        return self.restores + self.retries + self.heal_passes + self.failovers

    def as_dict(self) -> "dict[str, object]":
        return {
            "plan": self.plan.to_dict(),
            "counts": dict(self.counts),
            "faults_injected": self.faults_injected,
            "checkpoints_saved": self.checkpoints_saved,
            "restores": self.restores,
            "retries": self.retries,
            "heal_passes": self.heal_passes,
            "healed_vertices": self.healed_vertices,
            "failovers": self.failovers,
            "events": [e.as_dict() for e in self.events],
            "events_dropped": self.events_dropped,
        }


@dataclass(frozen=True)
class ExchangePerturbation:
    """Outcome of the exchange-superstep fault hook.

    ``regress`` lists vertices whose just-published signature update was
    dropped or delayed (the caller reverts them to their pre-round
    values; monotone max-propagation recomputes them in a later round).
    ``extra_messages`` counts duplicated plus re-sent messages to charge
    on top of the round's real traffic.
    """

    regress: np.ndarray
    extra_messages: int
    injected: bool


_NO_PERTURBATION = ExchangePerturbation(
    regress=np.empty(0, dtype=np.int64), extra_messages=0, injected=False
)


class FaultInjector:
    """Seeded runtime fault decisions for one run (engine or cluster)."""

    def __init__(self, plan: FaultPlan, *, tracer: "Tracer | None" = None) -> None:
        self.plan = plan
        self.rng = plan.rng()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.report = FaultReport(plan=plan)
        self._engine_budget = plan.max_engine_faults
        self._cluster_budget = plan.max_cluster_faults
        self._crash_pending = plan.crash_iteration is not None
        self._rank_crash_pending = plan.rank_crash_superstep is not None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, kind: str, site: str, step: int, **detail) -> None:
        self.report.counts[kind] = self.report.counts.get(kind, 0) + 1
        if len(self.report.events) < MAX_RECORDED_EVENTS:
            self.report.events.append(
                FaultEvent(kind=kind, site=site, step=step, detail=detail)
            )
        else:
            self.report.events_dropped += 1
        if self.tracer.enabled:
            self.tracer.counter(
                kind if kind.startswith("recovery:") else f"fault:{kind}",
                site=site,
                step=step,
                **{k: v for k, v in detail.items() if np.isscalar(v)},
            )

    @property
    def cluster_fault_budget(self) -> int:
        """Remaining cluster fault budget (bounds the extra BSP rounds)."""
        return self._cluster_budget

    # ------------------------------------------------------------------
    # engine seams (ECL-SCC outer loop)
    # ------------------------------------------------------------------
    def perturb_propagation(self, sigs, iteration: int) -> bool:
        """Maybe regress sampled signatures to the phase-start snapshot.

        Called after Phase 2 reaches a fixed point; returns True when a
        stale-read / lost-update fault fired, in which case the driver
        re-runs propagation (the extra rounds are charged by the engine
        as usual).  Regression to the Phase-1 identity snapshot is the
        *strongest* staleness — any real race leaves a signature at some
        intermediate monotone value, so invariance under this model
        implies invariance under every milder interleaving.
        """
        injected = False
        for kind, rate in (
            ("stale-read", self.plan.stale_read_rate),
            ("lost-update", self.plan.lost_update_rate),
        ):
            if rate <= 0 or self._engine_budget <= 0:
                continue
            if self.rng.random() >= rate:
                continue
            hit = self._regress_signatures(sigs)
            if hit == 0:
                continue
            self._engine_budget -= 1
            injected = True
            self._record(kind, "engine:phase2", iteration, vertices=hit)
        return injected

    def _regress_signatures(self, sigs) -> int:
        """Revert a sampled vertex set to ``sig == identity``; returns hits."""
        n = sigs.sig_in.size
        ident = np.arange(n, dtype=sigs.sig_in.dtype)
        moved = np.flatnonzero((sigs.sig_in != ident) | (sigs.sig_out != ident))
        if moved.size == 0:
            return 0
        k = max(1, int(round(self.plan.victim_fraction * moved.size)))
        victims = self.rng.choice(moved, size=min(k, moved.size), replace=False)
        sigs.sig_in[victims] = victims.astype(sigs.sig_in.dtype)
        sigs.sig_out[victims] = victims.astype(sigs.sig_out.dtype)
        return int(victims.size)

    def crash_due(self, iteration: int) -> bool:
        """True exactly once, at the plan's engine crash iteration."""
        if self._crash_pending and iteration == self.plan.crash_iteration:
            self._crash_pending = False
            self._record("crash", "engine:outer-loop", iteration)
            return True
        return False

    def flip_label_bits(self, labels: np.ndarray, num_vertices: int) -> np.ndarray:
        """Inject ``plan.bitflips`` single-bit corruptions into *labels*.

        Returns the (possibly repeated) flipped vertex indices.  Flips
        stay within the ID bit-width so corrupted labels are plausible
        vertex IDs — the hard case for the verification guard — but may
        also land out of range, the easy case.
        """
        flips = min(self.plan.bitflips, num_vertices and self.plan.bitflips)
        if flips <= 0 or num_vertices <= 1:
            return np.empty(0, dtype=np.int64)
        bits = max(1, int(num_vertices - 1).bit_length())
        idx = self.rng.integers(0, num_vertices, size=flips)
        for v in idx:
            bit = int(self.rng.integers(0, bits))
            labels[v] ^= np.asarray(1 << bit, dtype=labels.dtype)
            self._record(
                "bit-flip", "engine:labels", -1,
                vertex=int(v), bit=bit, value=int(labels[v]),
            )
        return idx

    # ------------------------------------------------------------------
    # recovery recording (called by the drivers / recovery machinery)
    # ------------------------------------------------------------------
    def record_checkpoint(self, iteration: int, nbytes: int) -> None:
        self.report.checkpoints_saved += 1
        self._record(
            "recovery:checkpoint", "engine:outer-loop", iteration, bytes=nbytes
        )

    def record_restore(self, iteration: int, restored_to: int) -> None:
        self.report.restores += 1
        self._record(
            "recovery:restore", "engine:outer-loop", iteration,
            restored_to=restored_to,
        )

    def record_heal(self, offenders: int, healed: int) -> None:
        self.report.heal_passes += 1
        self.report.healed_vertices += healed
        self._record(
            "recovery:self-heal", "engine:labels", -1,
            offenders=offenders, healed=healed,
        )

    def record_retry(self, superstep: int, rank: int, attempt: int,
                     backoff_s: float) -> None:
        self.report.retries += 1
        self._record(
            "recovery:retry", "cluster:superstep", superstep,
            rank=rank, attempt=attempt, backoff_s=backoff_s,
        )

    def record_failover(self, superstep: int, rank: int) -> None:
        self.report.failovers += 1
        self._record(
            "recovery:failover", "cluster:superstep", superstep, rank=rank
        )

    # ------------------------------------------------------------------
    # cluster seams (VirtualCluster supersteps)
    # ------------------------------------------------------------------
    def perturb_exchange(
        self, superstep: int, updated: np.ndarray
    ) -> ExchangePerturbation:
        """Maybe drop/duplicate/delay this exchange's boundary messages.

        *updated* is the vertex set whose signatures changed this round
        (the messages in flight).  Dropped and delayed updates are
        regressed by the caller and recomputed in a later BSP round —
        monotone, so labels are unchanged; drops additionally charge one
        re-send message per victim (the sender's timeout path).
        """
        if updated.size == 0 or self._cluster_budget <= 0:
            return _NO_PERTURBATION
        regress: "list[np.ndarray]" = []
        extra = 0
        injected = False
        for kind, rate in (
            ("message-drop", self.plan.message_drop_rate),
            ("message-delay", self.plan.message_delay_rate),
            ("message-dup", self.plan.message_dup_rate),
        ):
            if rate <= 0 or self._cluster_budget <= 0:
                continue
            if self.rng.random() >= rate:
                continue
            k = max(1, int(round(self.plan.victim_fraction * updated.size)))
            victims = self.rng.choice(
                updated, size=min(k, updated.size), replace=False
            )
            self._cluster_budget -= 1
            injected = True
            if kind == "message-dup":
                extra += int(victims.size)          # duplicated sends
            else:
                regress.append(victims)
                if kind == "message-drop":
                    extra += int(victims.size)      # timeout re-sends
            self._record(
                kind, "cluster:exchange", superstep, messages=int(victims.size)
            )
        if not injected:
            return _NO_PERTURBATION
        merged = (
            np.unique(np.concatenate(regress))
            if regress
            else np.empty(0, dtype=np.int64)
        )
        return ExchangePerturbation(
            regress=merged, extra_messages=extra, injected=True
        )

    def rank_crash_due(self, superstep: int) -> bool:
        """True exactly once, at the first check at-or-after the plan's
        rank-crash superstep (crashes are only observable at exchanges)."""
        if (
            self._rank_crash_pending
            and superstep >= self.plan.rank_crash_superstep
        ):
            self._rank_crash_pending = False
            self._record(
                "rank-crash", "cluster:superstep", superstep,
                rank=self.plan.rank_crash_rank,
            )
            return True
        return False

    # ------------------------------------------------------------------
    def status(self) -> Status:
        """Run status implied by the record so far (driver may override)."""
        if self.report.failovers:
            return Status.DEGRADED
        if self.report.faults_injected:
            return Status.RECOVERED
        return Status.CLEAN
