"""JSONL export/import for traces.

One JSON object per line.  Line types (the ``type`` field):

* ``meta``  — exactly one, first line: ``{"type": "meta",
  "schema": int, "meta": {...}}``.  ``schema`` is the format version
  (:data:`~repro.trace.records.SCHEMA_VERSION`); version-1 files (PR 1)
  carried no ``schema`` field and are read as schema 1.
* ``span``  — ``{"type": "span", "id": int, "parent": int|null,
  "depth": int, "name": str, "t0": float, "t1": float|null,
  "attrs": {...}}``
* ``counter`` / ``gauge`` — ``{"type": "counter", "name": str,
  "value": float, "t": float, "span": int|null, "attrs": {...}}``
* ``launch`` — one device-ledger charge (schema >= 2):
  ``{"type": "launch", "seq": int, "kind": str, "path": [str, ...],
  "span": int|null, <nonzero counter deltas>}``
* ``sample`` — one simulated-clock time-series point (schema >= 3,
  written by ``repro.obs``): ``{"type": "sample", "series": str,
  "kind": "counter"|"gauge", "t": float, "value": float}``
* ``timeline`` — one terminal job's phase decomposition (schema >= 3):
  ``{"type": "timeline", "job": int, "tenant": str, "workload": str,
  "state": str, "submit": float, "finish": float,
  "segments": [[phase, t0, t1], ...]}``

``t1`` is ``null`` for spans left open (a crashed run); import maps that
back to NaN.  The format is append-friendly and diff-friendly: spans are
written in start order, events in emission order, launches in charge
order, samples in sampling order, timelines in job-completion order.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Any, Iterable, Union

from .records import (
    SCHEMA_VERSION,
    EventRecord,
    LaunchRecord,
    SampleRecord,
    SpanRecord,
    TimelineRecord,
    Trace,
)

__all__ = ["dump_jsonl", "dumps_jsonl", "load_jsonl", "loads_jsonl"]

PathLike = Union[str, Path]

#: counter-delta fields of a launch line, in emission order; zero deltas
#: are omitted from the JSON to keep ledger lines short.
_LAUNCH_FIELDS = (
    "kernel_launches",
    "global_barriers",
    "edge_work",
    "vertex_work",
    "bytes_moved",
    "atomics",
    "serial_work",
    "rounds",
    "blocks_scheduled",
    "bytes_streamed",
)


def _json_default(value: Any) -> Any:
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def _span_obj(s: SpanRecord) -> "dict[str, Any]":
    return {
        "type": "span",
        "id": s.span_id,
        "parent": s.parent_id,
        "depth": s.depth,
        "name": s.name,
        "t0": s.t_start,
        "t1": None if math.isnan(s.t_end) else s.t_end,
        "attrs": s.attrs,
    }


def _event_obj(e: EventRecord) -> "dict[str, Any]":
    return {
        "type": e.kind,
        "name": e.name,
        "value": e.value,
        "t": e.t,
        "span": e.span_id,
        "attrs": e.attrs,
    }


def _launch_obj(rec: LaunchRecord) -> "dict[str, Any]":
    obj: "dict[str, Any]" = {
        "type": "launch",
        "seq": rec.seq,
        "kind": rec.kind,
        "path": list(rec.path),
        "span": rec.span_id,
    }
    for name in _LAUNCH_FIELDS:
        value = getattr(rec, name)
        if value:
            obj[name] = value
    return obj


def _sample_obj(rec: SampleRecord) -> "dict[str, Any]":
    return {
        "type": "sample",
        "series": rec.series,
        "kind": rec.kind,
        "t": rec.t,
        "value": rec.value,
    }


def _timeline_obj(rec: TimelineRecord) -> "dict[str, Any]":
    return {
        "type": "timeline",
        "job": rec.job_id,
        "tenant": rec.tenant,
        "workload": rec.workload,
        "state": rec.state,
        "submit": rec.submit_s,
        "finish": rec.finish_s,
        "segments": [[phase, t0, t1] for phase, t0, t1 in rec.segments],
    }


def _lines(trace: Trace) -> "Iterable[str]":
    # the header always carries the schema version, even with empty meta,
    # so readers (and `repro trace diff`) can reject mixed-version input
    yield json.dumps(
        {"type": "meta", "schema": SCHEMA_VERSION, "meta": trace.meta},
        default=_json_default,
    )
    for s in trace.spans:
        yield json.dumps(_span_obj(s), default=_json_default)
    for e in trace.events:
        yield json.dumps(_event_obj(e), default=_json_default)
    for rec in trace.launches:
        yield json.dumps(_launch_obj(rec), default=_json_default)
    for rec in trace.samples:
        yield json.dumps(_sample_obj(rec), default=_json_default)
    for rec in trace.timelines:
        yield json.dumps(_timeline_obj(rec), default=_json_default)


def dumps_jsonl(trace: Trace) -> str:
    """Serialize *trace* to a JSONL string."""
    return "\n".join(_lines(trace)) + "\n"


def dump_jsonl(trace: Trace, path: "PathLike | IO[str]") -> None:
    """Write *trace* to *path* (a filesystem path or open text stream)."""
    if hasattr(path, "write"):
        for line in _lines(trace):
            path.write(line + "\n")
    else:
        Path(path).write_text(dumps_jsonl(trace), encoding="utf-8")


def loads_jsonl(text: str) -> Trace:
    """Parse a JSONL string back into a :class:`Trace`.

    Files written before schema versioning (no ``schema`` field on the
    ``meta`` line, or no ``meta`` line at all) are read as schema 1;
    files declaring a *newer* schema than this library understands raise
    :class:`ValueError` instead of mis-parsing.
    """
    trace = Trace(schema=1)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        obj = json.loads(raw)
        kind = obj.get("type")
        if kind == "meta":
            trace.meta.update(obj.get("meta", {}))
            schema = int(obj.get("schema", 1))
            if schema > SCHEMA_VERSION:
                raise ValueError(
                    f"line {lineno}: trace schema {schema} is newer than"
                    f" the supported version {SCHEMA_VERSION}"
                )
            trace.schema = schema
        elif kind == "span":
            trace.spans.append(
                SpanRecord(
                    name=obj["name"],
                    span_id=int(obj["id"]),
                    parent_id=None if obj["parent"] is None else int(obj["parent"]),
                    depth=int(obj["depth"]),
                    t_start=float(obj["t0"]),
                    t_end=math.nan if obj["t1"] is None else float(obj["t1"]),
                    attrs=dict(obj.get("attrs", {})),
                )
            )
        elif kind in ("counter", "gauge"):
            trace.events.append(
                EventRecord(
                    name=obj["name"],
                    kind=kind,
                    value=float(obj["value"]),
                    t=float(obj["t"]),
                    span_id=None if obj.get("span") is None else int(obj["span"]),
                    attrs=dict(obj.get("attrs", {})),
                )
            )
        elif kind == "launch":
            trace.launches.append(
                LaunchRecord(
                    seq=int(obj["seq"]),
                    kind=obj["kind"],
                    path=tuple(obj.get("path", ())),
                    span_id=None if obj.get("span") is None else int(obj["span"]),
                    **{f: int(obj.get(f, 0)) for f in _LAUNCH_FIELDS},
                )
            )
        elif kind == "sample":
            trace.samples.append(
                SampleRecord(
                    series=obj["series"],
                    kind=obj["kind"],
                    t=float(obj["t"]),
                    value=float(obj["value"]),
                )
            )
        elif kind == "timeline":
            trace.timelines.append(
                TimelineRecord(
                    job_id=int(obj["job"]),
                    tenant=obj["tenant"],
                    workload=obj["workload"],
                    state=obj["state"],
                    submit_s=float(obj["submit"]),
                    finish_s=float(obj["finish"]),
                    segments=tuple(
                        (str(phase), float(t0), float(t1))
                        for phase, t0, t1 in obj.get("segments", ())
                    ),
                )
            )
        else:
            raise ValueError(f"line {lineno}: unknown record type {kind!r}")
    return trace


def load_jsonl(path: "PathLike | IO[str]") -> Trace:
    """Read a trace from *path* (a filesystem path or open text stream)."""
    if hasattr(path, "read"):
        return loads_jsonl(path.read())
    return loads_jsonl(Path(path).read_text(encoding="utf-8"))
