"""Structured tracing and metrics for every SCC algorithm in the library.

The paper's whole evaluation (Figs. 5-14) reasons about *per-phase*
behavior — propagation rounds, kernel launches, edge-removal fractions.
This subpackage is the substrate that records it:

* :class:`Tracer` — nested spans (``outer-iteration`` →
  ``phase1-init`` / ``phase2-propagate`` / ``phase3-filter``) plus typed
  ``counter``/``gauge`` events;
* :class:`NullTracer` / :data:`NULL_TRACER` — the disabled path; no
  clock reads, no allocation, zero measurable overhead;
* :class:`Trace` — the recorded result: queryable, JSONL
  round-trippable (:meth:`Trace.to_jsonl` / :meth:`Trace.from_jsonl`);
* :func:`render_summary` — flame-style text aggregation.

Every ``*_scc`` entry point, :func:`repro.bench.run_algorithm`, and
:func:`repro.distributed.distributed_ecl_scc` accept ``tracer=``; the
``repro trace`` CLI subcommand runs an algorithm on a named workload and
dumps/summarizes the JSONL.  See ``docs/observability.md``.
"""

from .records import (
    COUNTER,
    GAUGE,
    SCHEMA_VERSION,
    EventRecord,
    LaunchRecord,
    SampleRecord,
    SpanRecord,
    TimelineRecord,
    Trace,
)
from .tracer import NULL_TRACER, NullTracer, Tracer, ensure_tracer
from .jsonl import dump_jsonl, dumps_jsonl, load_jsonl, loads_jsonl
from .summary import PathStats, render_summary, summarize_spans

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ensure_tracer",
    "Trace",
    "SpanRecord",
    "EventRecord",
    "LaunchRecord",
    "SampleRecord",
    "TimelineRecord",
    "COUNTER",
    "GAUGE",
    "SCHEMA_VERSION",
    "dump_jsonl",
    "dumps_jsonl",
    "load_jsonl",
    "loads_jsonl",
    "PathStats",
    "summarize_spans",
    "render_summary",
]
