"""The :class:`Tracer` (recording) and :class:`NullTracer` (disabled).

Usage::

    tracer = Tracer()
    with tracer.span("outer-iteration", index=1):
        with tracer.span("phase2-propagate") as sp:
            tracer.counter("relaxation-round")
            sp.set(rounds=1)
    tracer.trace.count_spans("outer-iteration")   # -> 1

Every instrumented entry point takes ``tracer=None``; ``None`` resolves
to the shared :data:`NULL_TRACER`, whose disabled path performs no clock
reads, no allocation, and no recording — passing no tracer costs nothing
(guarded by ``tests/test_trace.py::TestNullTracerOverhead``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from .records import EventRecord, SpanRecord, Trace, plain_attrs

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "ensure_tracer"]


class _SpanHandle:
    """Context manager for one open span of a recording tracer."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    @property
    def record(self) -> SpanRecord:
        return self._record

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach (or update) attributes on the open span."""
        self._record.attrs.update(plain_attrs(attrs))
        return self

    def close(self) -> None:
        """Close the span explicitly (alternative to the ``with`` form)."""
        self._tracer._close_span(self._record)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close_span(self._record)
        return False


class _NullSpan:
    """Reusable no-op span handle; one shared instance serves all calls."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    @property
    def record(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested spans and counter/gauge events into a :class:`Trace`.

    Parameters
    ----------
    clock:
        zero-argument callable returning a monotonically nondecreasing
        float.  Defaults to :func:`time.perf_counter`; tests inject a
        deterministic counter.
    meta:
        free-form metadata stored on the trace (algorithm, graph, ...).
    """

    enabled: bool = True

    def __init__(
        self,
        *,
        clock: "Callable[[], float] | None" = None,
        meta: "dict[str, Any] | None" = None,
    ) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._trace = Trace(meta=dict(meta or {}))
        self._stack: "list[SpanRecord]" = []
        self._next_id = 0

    # ------------------------------------------------------------------
    @property
    def trace(self) -> Trace:
        """The trace recorded so far (records of open spans included)."""
        return self._trace

    @property
    def current_span_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def current_path(self) -> "tuple[str, ...]":
        """Name chain of the currently open spans (root first).

        Empty tuple at top level; the ``repro.profile`` ledger stamps it
        on every device charge so per-launch costs can be attributed to
        phases without re-walking the span tree.
        """
        return tuple(record.name for record in self._stack)

    def span(self, name: str, **attrs: Any):
        """Open a nested span; use as a context manager."""
        record = SpanRecord(
            name=name,
            span_id=self._next_id,
            parent_id=self.current_span_id,
            depth=len(self._stack),
            t_start=self._clock(),
            attrs=plain_attrs(attrs),
        )
        self._next_id += 1
        self._trace.spans.append(record)
        self._stack.append(record)
        return _SpanHandle(self, record)

    def _close_span(self, record: SpanRecord) -> None:
        if record.closed and record not in self._stack:
            return  # double close is a no-op
        if not self._stack or self._stack[-1] is not record:
            # exiting out of order (a caller kept a handle across spans);
            # close everything above it so nesting stays well-formed
            while self._stack and self._stack[-1] is not record:
                self._stack.pop().t_end = self._clock()
        if self._stack:
            self._stack.pop()
        record.t_end = self._clock()

    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1, **attrs: Any) -> None:
        """Record a monotonically accumulating quantity (sums in summaries)."""
        self._event(name, "counter", value, attrs)

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        """Record an instantaneous level (last-value semantics)."""
        self._event(name, "gauge", value, attrs)

    def _event(self, name: str, kind: str, value: float, attrs: "dict[str, Any]") -> None:
        self._trace.events.append(
            EventRecord(
                name=name,
                kind=kind,
                value=float(value),
                t=self._clock(),
                span_id=self.current_span_id,
                attrs=plain_attrs(attrs),
            )
        )

    def finish(self) -> Trace:
        """Close any still-open spans and return the trace."""
        while self._stack:
            self._stack.pop().t_end = self._clock()
        return self._trace

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Tracer spans={len(self._trace.spans)}"
            f" events={len(self._trace.events)} depth={len(self._stack)}>"
        )


class NullTracer(Tracer):
    """Disabled tracer: records nothing, never reads the clock.

    ``span``/``counter``/``gauge`` are overridden with constant-time
    no-ops (one shared :class:`_NullSpan` serves every ``with`` block),
    so instrumented code paths cost the same as uninstrumented ones when
    tracing is off.
    """

    enabled = False

    def __init__(self) -> None:
        # a poisoned clock proves no disabled path ever reads it
        super().__init__(clock=_null_clock)

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: float = 1, **attrs: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        pass

    def finish(self) -> Trace:
        return self._trace


def _null_clock() -> float:  # pragma: no cover - must never run
    raise AssertionError("NullTracer must never read the clock")


#: Shared disabled tracer; ``tracer=None`` arguments resolve to this.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: "Tracer | None") -> Tracer:
    """Map ``None`` to the shared :data:`NULL_TRACER`."""
    return tracer if tracer is not None else NULL_TRACER
