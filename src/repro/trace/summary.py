"""Flame-style text summary of a trace.

Spans are aggregated by their *path* (the chain of names from the root),
so the same phase under different parents stays distinct.  Rendering is
an indented tree with call counts and total/self/mean durations (self =
exclusive time, total minus closed children), followed by counter totals
— the per-phase view Figures 5-14 of the paper reason about::

    span                                count       total        self        mean
    outer-iteration                         4   1.23e-03s   1.10e-04s   3.08e-04s
      phase1-init                           4   ...
      phase2-propagate                      4   ...
      phase3-filter                         4   ...
    counters                            count         sum
    relaxation-round                       37          37
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from .records import COUNTER, Trace

__all__ = ["PathStats", "summarize_spans", "render_summary"]


@dataclass
class PathStats:
    """Aggregated timing of every span sharing one root-to-name path.

    ``self_total`` is the *exclusive* time: ``total`` minus the time
    spent in closed child spans, so a parent phase isn't double-counted
    against the leaves nested in it.
    """

    path: "Tuple[str, ...]"
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    attrs_sums: "Dict[str, float]" = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def name(self) -> str:
        return self.path[-1]


def summarize_spans(trace: Trace) -> "list[PathStats]":
    """Aggregate spans by path, in first-appearance (pre-)order."""
    stats: "dict[Tuple[str, ...], PathStats]" = {}
    path_of: "dict[int, Tuple[str, ...]]" = {}
    for path, span in trace.iter_paths():
        path_of[span.span_id] = path
        ps = stats.get(path)
        if ps is None:
            ps = stats[path] = PathStats(path=path)
        ps.count += 1
        if span.closed:
            ps.total += span.duration
            ps.self_total += span.duration
        for key, value in span.attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                ps.attrs_sums[key] = ps.attrs_sums.get(key, 0.0) + value
    # exclusive time: subtract each closed child's duration from its
    # parent's path bucket
    for span in trace.spans:
        if span.closed and span.parent_id is not None:
            parent_path = path_of.get(span.parent_id)
            if parent_path in stats:
                stats[parent_path].self_total -= span.duration
    return list(stats.values())


def _fmt_seconds(s: float) -> str:
    if math.isnan(s):
        return "-"
    return f"{s:.3e}s"


def render_summary(trace: Trace, *, width: int = 40) -> str:
    """Render the aggregated span tree and counter totals as text."""
    lines: "list[str]" = []
    if trace.meta:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(trace.meta.items()))
        lines.append(f"trace: {meta}")
    lines.append(
        f"{len(trace.spans)} spans, {len(trace.events)} events"
    )
    span_stats = summarize_spans(trace)
    if span_stats:
        lines.append(
            f"{'span':<{width}} {'count':>7} {'total':>11}"
            f" {'self':>11} {'mean':>11}"
        )
        for ps in span_stats:
            label = "  " * ps.depth + ps.name
            extra = ""
            if ps.attrs_sums:
                extra = "  [" + ", ".join(
                    f"{k}={v:g}" for k, v in sorted(ps.attrs_sums.items())
                ) + "]"
            lines.append(
                f"{label:<{width}} {ps.count:>7}"
                f" {_fmt_seconds(ps.total):>11} {_fmt_seconds(ps.self_total):>11}"
                f" {_fmt_seconds(ps.mean):>11}{extra}"
            )
    counters: "dict[str, tuple[int, float]]" = {}
    gauges: "dict[str, tuple[int, float]]" = {}
    for e in trace.events:
        table = counters if e.kind == COUNTER else gauges
        count, acc = table.get(e.name, (0, 0.0))
        # counters sum; gauges keep the last observed value
        table[e.name] = (count + 1, acc + e.value if e.kind == COUNTER else e.value)
    if counters:
        lines.append(f"{'counter':<{width}} {'count':>7} {'sum':>11}")
        for name in sorted(counters):
            count, total = counters[name]
            lines.append(f"{name:<{width}} {count:>7} {total:>11g}")
    if gauges:
        lines.append(f"{'gauge':<{width}} {'count':>7} {'last':>11}")
        for name in sorted(gauges):
            count, last = gauges[name]
            lines.append(f"{name:<{width}} {count:>7} {last:>11g}")
    return "\n".join(lines)
