"""Typed trace records and the :class:`Trace` container.

A finished trace is a flat list of :class:`SpanRecord` (in *start*
order — a parent always precedes its children) plus a flat list of
:class:`EventRecord` (counters and gauges, in emission order).  Records
are plain dataclasses so traces compare with ``==``, round-trip through
JSONL losslessly, and need no tracer machinery to inspect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = [
    "SpanRecord",
    "EventRecord",
    "LaunchRecord",
    "SampleRecord",
    "TimelineRecord",
    "Trace",
    "COUNTER",
    "GAUGE",
    "SCHEMA_VERSION",
]

#: event kinds
COUNTER = "counter"
GAUGE = "gauge"

#: JSONL schema version written by :mod:`repro.trace.jsonl`.  Version 1
#: (PR 1) had no header version and no launch records; version 2 adds
#: both; version 3 adds observability ``sample`` (simulated-clock time
#: series points) and ``timeline`` (per-job phase decompositions)
#: lines.  Bump whenever the line format changes incompatibly.
SCHEMA_VERSION = 3


def _plain(value: Any) -> Any:
    """Coerce numpy scalars (and similar) to plain Python for JSON."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            return value
    return value


def plain_attrs(attrs: "dict[str, Any]") -> "dict[str, Any]":
    """Coerce every attr value to a JSON-representable plain type."""
    return {k: _plain(v) for k, v in attrs.items()}


@dataclass
class SpanRecord:
    """One closed (or still-open) span.

    Attributes
    ----------
    name:
        span label, e.g. ``"outer-iteration"`` or ``"phase2-propagate"``.
    span_id:
        unique within the trace; assigned in start order.
    parent_id:
        enclosing span's id, or ``None`` for a root span.
    depth:
        nesting depth (roots are 0).
    t_start / t_end:
        tracer-clock timestamps; ``t_end`` is NaN while the span is open.
    attrs:
        arbitrary JSON-representable key/value annotations.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    t_start: float
    t_end: float = math.nan
    attrs: "dict[str, Any]" = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def closed(self) -> bool:
        return not math.isnan(self.t_end)


@dataclass
class EventRecord:
    """One counter/gauge emission, attributed to the enclosing span."""

    name: str
    kind: str  # COUNTER | GAUGE
    value: float
    t: float
    span_id: Optional[int] = None
    attrs: "dict[str, Any]" = field(default_factory=dict)


@dataclass
class LaunchRecord:
    """One device charge (kernel launch, in-kernel work, or serial step).

    Recorded by :func:`repro.profile.attach_ledger` as the *delta* of the
    device's :class:`~repro.device.KernelCounters` across a single
    ``launch()``/``work()``/``serial()`` call, tagged with the span path
    that was open when the charge happened.  The counter fields use the
    exact names of :meth:`~repro.device.KernelCounters.snapshot`, so a
    record duck-types as a tiny ``KernelCounters`` for the cost model.
    """

    seq: int
    kind: str  # "launch" | "work" | "serial"
    path: "tuple[str, ...]"
    span_id: Optional[int] = None
    kernel_launches: int = 0
    global_barriers: int = 0
    edge_work: int = 0
    vertex_work: int = 0
    bytes_moved: int = 0
    atomics: int = 0
    serial_work: int = 0
    rounds: int = 0
    blocks_scheduled: int = 0
    bytes_streamed: int = 0


@dataclass
class SampleRecord:
    """One simulated-clock time-series point (``repro.obs`` export).

    ``kind`` distinguishes cumulative ``counter`` series (monotone
    totals; a rate is the slope between points) from instantaneous
    ``gauge`` series (queue depth, cache hit rate, breaker level).
    ``t`` is simulated seconds on the service clock.
    """

    series: str
    kind: str  # COUNTER | GAUGE
    t: float
    value: float


@dataclass
class TimelineRecord:
    """One terminal job's latency decomposed into phase segments.

    ``segments`` is a tuple of ``(phase, t0, t1)`` triples that are
    ordered, non-overlapping and contiguous: consecutive segments share
    their breakpoint, the first starts at ``submit_s`` and the last
    ends at ``finish_s`` — so the decomposition spans the end-to-end
    latency exactly.
    """

    job_id: int
    tenant: str
    workload: str
    state: str
    submit_s: float
    finish_s: float
    segments: "tuple[tuple[str, float, float], ...]" = ()


@dataclass
class Trace:
    """A finished trace: spans in start order plus counter/gauge events.

    ``launches`` holds the per-charge device ledger (empty unless the run
    was profiled via :func:`repro.profile.attach_ledger`); ``samples``
    and ``timelines`` hold the observability export (empty unless a
    ``repro.obs`` recorder was attached, schema v3); ``schema`` is the
    JSONL schema version the trace was read from (or will be written
    as).
    """

    spans: "list[SpanRecord]" = field(default_factory=list)
    events: "list[EventRecord]" = field(default_factory=list)
    meta: "dict[str, Any]" = field(default_factory=dict)
    launches: "list[LaunchRecord]" = field(default_factory=list)
    samples: "list[SampleRecord]" = field(default_factory=list)
    timelines: "list[TimelineRecord]" = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count_spans(self, name: str) -> int:
        """Number of spans labelled *name*."""
        return sum(1 for s in self.spans if s.name == name)

    def find_spans(self, name: str) -> "list[SpanRecord]":
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: SpanRecord) -> "list[SpanRecord]":
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> "list[SpanRecord]":
        return [s for s in self.spans if s.parent_id is None]

    def count_events(self, name: str) -> int:
        """Number of events labelled *name*."""
        return sum(1 for e in self.events if e.name == name)

    def sum_counter(self, name: str) -> float:
        """Sum of all counter values labelled *name*."""
        return float(
            sum(e.value for e in self.events if e.name == name and e.kind == COUNTER)
        )

    def span_path(self, span: SpanRecord) -> "tuple[str, ...]":
        """Name chain from the root down to *span*."""
        by_id = {s.span_id: s for s in self.spans}
        names: "list[str]" = []
        cur: "SpanRecord | None" = span
        while cur is not None:
            names.append(cur.name)
            cur = by_id.get(cur.parent_id) if cur.parent_id is not None else None
        return tuple(reversed(names))

    def iter_paths(self) -> "Iterator[tuple[tuple[str, ...], SpanRecord]]":
        for s in self.spans:
            yield self.span_path(s), s

    # ------------------------------------------------------------------
    # JSONL convenience (implementation in repro.trace.jsonl)
    # ------------------------------------------------------------------
    def to_jsonl(self, path) -> None:
        """Write this trace to *path* (one JSON object per line)."""
        from .jsonl import dump_jsonl

        dump_jsonl(self, path)

    def to_jsonl_str(self) -> str:
        from .jsonl import dumps_jsonl

        return dumps_jsonl(self)

    @classmethod
    def from_jsonl(cls, path) -> "Trace":
        """Read a trace previously written by :meth:`to_jsonl`."""
        from .jsonl import load_jsonl

        return load_jsonl(path)

    @classmethod
    def from_jsonl_str(cls, text: str) -> "Trace":
        from .jsonl import loads_jsonl

        return loads_jsonl(text)
