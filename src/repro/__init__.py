"""repro — a from-scratch Python reproduction of ECL-SCC (SC '23).

"A GPU Algorithm for Detecting Strongly Connected Components",
Alabandi, Sands, Biros & Burtscher, SC '23 (doi 10.1145/3581784.3607071).

Quick start::

    from repro import ecl_scc, CSRGraph

    g = CSRGraph.from_edges([0, 1, 2, 2], [1, 2, 0, 3])
    result = ecl_scc(g)
    result.labels          # -> [2, 2, 2, 3]: vertices 0,1,2 form one SCC

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the ECL-SCC algorithm and its optimizations;
* :mod:`repro.graph` — CSR graphs, generators, synthetic SuiteSparse suite;
* :mod:`repro.mesh` — radiative-transfer meshes and sweep-graph builder;
* :mod:`repro.baselines` — Tarjan/Kosaraju oracles, FB, GPU-SCC, iSpan, Hong;
* :mod:`repro.device` — virtual GPU/CPU specs, counters, cost model;
* :mod:`repro.sweep` — the downstream transport-sweep application;
* :mod:`repro.bench` — the paper's tables/figures as runnable experiments;
* :mod:`repro.trace` — structured tracing (nested spans, counters, JSONL);
* :mod:`repro.faults` — fault injection, checkpoint/restart, self-healing.

Every ``*_scc`` entry point returns an :class:`~repro.results.AlgoResult`
(or a subclass) and accepts an optional ``tracer=`` keyword; see
``docs/observability.md``.

The unified front door is :func:`repro.solve` (one call, every pipeline
axis as a keyword) / :class:`repro.Solver` (the axes frozen into a
reusable configuration); mutable graphs are served by
:class:`repro.DynamicGraph` (:mod:`repro.dynamic`), whose
:meth:`~repro.dynamic.DynamicGraph.query` is the dynamic
generalization of a static solve.  See ``docs/dynamic.md``.
"""

from .core.eclscc import EclResult, ecl_scc
from .core.options import EclOptions
from .faults.plan import FaultPlan
from .graph.csr import CSRGraph
from .graph.edgelist import EdgeList
from .baselines.tarjan import tarjan_scc
from .mesh.sweepgraph import build_sweep_graph
from .analysis.verify import verify_labels
from .dynamic.graph import DynamicGraph
from .results import AlgoResult, Status, count_sccs
from .solver import Solver, solve
from .trace import NULL_TRACER, NullTracer, Trace, Tracer

__version__ = "1.0.0"

__all__ = [
    "solve",
    "Solver",
    "DynamicGraph",
    "AlgoResult",
    "Status",
    "EclResult",
    "ecl_scc",
    "EclOptions",
    "FaultPlan",
    "count_sccs",
    "Trace",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CSRGraph",
    "EdgeList",
    "tarjan_scc",
    "build_sweep_graph",
    "verify_labels",
    "__version__",
]
