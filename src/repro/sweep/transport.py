"""Multi-ordinate transport: source iteration over all discrete ordinates.

This is the paper's full application context (§1): the radiative transfer
equation is solved by sweeping each discrete ordinate's graph in upwind
order; with isotropic scattering, the ordinates couple through the scalar
flux, so the whole sweep set iterates ("source iteration") until the
scalar flux converges.  SCC detection runs once per ordinate up front —
the paper's point that "SCC detection must be performed separately for
each discrete ordinate" — and the schedules are then reused across all
source iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.eclscc import ecl_scc
from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..mesh.core import Mesh
from ..mesh.sweepgraph import sweep_graphs
from ..types import FLOAT_DTYPE
from .scheduler import SweepSchedule, sweep_schedule
from .solver import solve_transport_sweep

__all__ = ["TransportProblem", "TransportSolution", "solve_transport"]


@dataclass
class TransportProblem:
    """A model steady-state transport problem on a mesh.

    Attributes
    ----------
    mesh:
        the spatial mesh (graph vertices = elements).
    num_ordinates:
        size of the angular quadrature (equal weights 1/N).
    sigma_t, sigma_s:
        total and isotropic-scattering cross sections (constant);
        ``sigma_s < sigma_t`` guarantees source iteration contracts.
    source:
        external isotropic source per element (scalar or array).
    coupling:
        upwind face-coupling weight (see :mod:`repro.sweep.solver`).
    """

    mesh: Mesh
    num_ordinates: int = 8
    sigma_t: float = 2.0
    sigma_s: float = 0.5
    source: "float | np.ndarray" = 1.0
    coupling: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.sigma_s < self.sigma_t:
            raise ConvergenceError(
                "need 0 <= sigma_s < sigma_t for source iteration to converge"
            )


@dataclass
class TransportSolution:
    """Converged scalar flux plus per-ordinate diagnostics."""

    scalar_flux: np.ndarray
    source_iterations: int
    flux_residual: float
    ordinates: np.ndarray
    num_sccs_per_ordinate: "list[int]"
    schedule_depths: "list[int]"
    scc_detect_model_seconds: float

    @property
    def total_nontrivial_sccs(self) -> int:
        return sum(
            n for n in self.num_sccs_per_ordinate
        )  # pragma: no cover - convenience


def solve_transport(
    problem: TransportProblem,
    *,
    tol: float = 1e-10,
    max_source_iterations: int = 200,
) -> TransportSolution:
    """Solve *problem* by source iteration over SCC-scheduled sweeps.

    Returns the converged scalar flux ``phi`` with
    ``sigma_t * psi_d = q + sigma_s * phi / N + coupling * sum_upwind psi_d``
    per ordinate d and ``phi = (1/N) * sum_d psi_d``.
    """
    mesh = problem.mesh
    n = mesh.num_elements
    pairs = sweep_graphs(mesh, problem.num_ordinates)
    ordinates = np.asarray([omega for omega, _ in pairs])

    # --- SCC detection + scheduling, once per ordinate -------------------
    schedules: "list[tuple[CSRGraph, SweepSchedule, np.ndarray]]" = []
    num_sccs = []
    depths = []
    detect_seconds = 0.0
    for _, graph in pairs:
        res = ecl_scc(graph)
        sch = sweep_schedule(graph, res.labels)
        schedules.append((graph, sch, res.labels))
        num_sccs.append(res.num_sccs)
        depths.append(sch.depth)
        detect_seconds += res.estimated_seconds

    q_ext = np.broadcast_to(
        np.asarray(problem.source, dtype=FLOAT_DTYPE), (n,)
    ).copy()
    phi = np.zeros(n, dtype=FLOAT_DTYPE)
    weight = 1.0 / problem.num_ordinates

    for iteration in range(1, max_source_iterations + 1):
        scatter = problem.sigma_s * phi * weight
        new_phi = np.zeros(n, dtype=FLOAT_DTYPE)
        for graph, sch, labels in schedules:
            sweep = solve_transport_sweep(
                graph,
                sch,
                labels,
                sigma_t=problem.sigma_t,
                source=q_ext + scatter,
                coupling=problem.coupling,
            )
            new_phi += weight * sweep.psi
        residual = float(np.max(np.abs(new_phi - phi))) if n else 0.0
        phi = new_phi
        if residual <= tol:
            return TransportSolution(
                scalar_flux=phi,
                source_iterations=iteration,
                flux_residual=residual,
                ordinates=ordinates,
                num_sccs_per_ordinate=num_sccs,
                schedule_depths=depths,
                scc_detect_model_seconds=detect_seconds,
            )
    raise ConvergenceError(
        f"source iteration did not reach {tol} in {max_source_iterations}"
        " iterations (scattering ratio too close to 1?)"
    )
