"""Downstream RTE application: sweep scheduling, single sweeps, and
multi-ordinate source-iteration transport."""

from .scheduler import SweepSchedule, sweep_schedule
from .solver import SweepResult, solve_transport_sweep
from .transport import TransportProblem, TransportSolution, solve_transport

__all__ = [
    "SweepSchedule",
    "sweep_schedule",
    "SweepResult",
    "solve_transport_sweep",
    "TransportProblem",
    "TransportSolution",
    "solve_transport",
]
