"""Sweep scheduling: from SCC labels to a livelock-free execution order.

The downstream consumer of SCC detection in radiative transfer (paper
§1): a transport sweep must process mesh elements in upwind order, which
is only well-defined on a DAG.  Cycles (SCCs) would livelock the sweep;
the fix in production codes is to contract each SCC to a super-node,
topologically order the condensation, and treat each non-trivial SCC as
one unit that is iterated internally (or solved directly).

:func:`sweep_schedule` produces the level structure: ``levels[k]`` is the
array of vertices whose SCC sits at depth ``k`` of the condensation —
everything within a level can be processed in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.condensation import condense, topological_levels
from ..graph.csr import CSRGraph
from ..types import VERTEX_DTYPE

__all__ = ["SweepSchedule", "sweep_schedule"]


@dataclass
class SweepSchedule:
    """Topological level schedule of a sweep graph's condensation.

    Attributes
    ----------
    levels:
        list of vertex arrays; level k only depends on levels < k.
    vertex_level:
        per-vertex level index.
    num_nontrivial:
        number of multi-vertex SCCs (each needs internal iteration).
    """

    levels: "list[np.ndarray]"
    vertex_level: np.ndarray
    num_nontrivial: int

    @property
    def depth(self) -> int:
        return len(self.levels)

    def max_parallelism(self) -> int:
        return max((lv.size for lv in self.levels), default=0)

    def validate_against(self, graph: CSRGraph, labels: np.ndarray) -> bool:
        """True iff every inter-SCC edge goes from a lower to higher level."""
        src, dst = graph.edges()
        inter = labels[src] != labels[dst]
        return bool(
            np.all(self.vertex_level[src[inter]] < self.vertex_level[dst[inter]])
        )


def sweep_schedule(graph: CSRGraph, labels: np.ndarray) -> SweepSchedule:
    """Build the level schedule for *graph* given its SCC *labels*."""
    dag, dense = condense(graph, labels)
    comp_level = (
        topological_levels(dag)
        if dag.num_vertices
        else np.empty(0, dtype=VERTEX_DTYPE)
    )
    vertex_level = comp_level[dense] if dense.size else np.empty(0, dtype=VERTEX_DTYPE)
    depth = int(comp_level.max()) + 1 if comp_level.size else 0
    levels = [
        np.flatnonzero(vertex_level == k).astype(VERTEX_DTYPE) for k in range(depth)
    ]
    _, comp_sizes = np.unique(dense, return_counts=True) if dense.size else (None, np.empty(0))
    return SweepSchedule(
        levels=levels,
        vertex_level=vertex_level,
        num_nontrivial=int(np.count_nonzero(comp_sizes > 1)),
    )
