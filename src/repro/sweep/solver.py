"""A model upwind transport sweep driven by the SCC schedule.

This is the "aha" integration: the reason the paper computes SCCs at all.
We solve a model discrete-ordinates balance per element::

    sigma_t * psi_e = q_e + sum_{upwind faces f} w * psi_upwind(f)

element by element in the schedule's topological order.  Trivial levels
are solved directly; non-trivial SCCs (cyclic dependencies, the paper's
livelock hazard) are relaxed with Jacobi iterations *inside* the SCC
until converged, exactly the standard production workaround.

The solver is intentionally simple physics (constant cross-section,
isotropic source, unit face weights) — its role is to demonstrate and
test that the SCC-based schedule yields a well-defined, convergent sweep
on graphs where a naive topological sweep would livelock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..types import FLOAT_DTYPE
from .scheduler import SweepSchedule

__all__ = ["SweepResult", "solve_transport_sweep"]


@dataclass
class SweepResult:
    """Converged angular flux and solver diagnostics."""

    psi: np.ndarray
    levels_processed: int
    scc_inner_iterations: int
    residual: float


def solve_transport_sweep(
    graph: CSRGraph,
    schedule: SweepSchedule,
    labels: np.ndarray,
    *,
    sigma_t: float = 2.0,
    source: "np.ndarray | float" = 1.0,
    coupling: float = 0.45,
    tol: float = 1e-12,
    max_inner: int = 10_000,
) -> SweepResult:
    """Solve the model sweep.  ``coupling * max_in_degree < sigma_t`` must
    hold for the in-SCC Jacobi iteration to contract; the defaults are
    safe for the mesh suite (degree <= 5).

    Raises :class:`ConvergenceError` if an SCC's inner iteration stalls.
    """
    n = graph.num_vertices
    psi = np.zeros(n, dtype=FLOAT_DTYPE)
    q = np.broadcast_to(np.asarray(source, dtype=FLOAT_DTYPE), (n,)).copy()
    labels = np.asarray(labels)
    src, dst = graph.edges()
    inner_total = 0

    # incoming contributions: psi[v] = (q[v] + coupling * sum_in psi[u]) / sigma_t
    for level in schedule.levels:
        if level.size == 0:
            continue
        in_level = np.zeros(n, dtype=bool)
        in_level[level] = True
        # edges entering this level (sources already solved or intra-level)
        entering = in_level[dst]
        e_src, e_dst = src[entering], dst[entering]
        intra = in_level[e_src] & (labels[e_src] == labels[e_dst])
        # direct solve with frozen upwind values from earlier levels
        fixed_contrib = np.zeros(n, dtype=FLOAT_DTYPE)
        np.add.at(fixed_contrib, e_dst[~intra], coupling * psi[e_src[~intra]])
        if not intra.any():
            psi[level] = (q[level] + fixed_contrib[level]) / sigma_t
            continue
        # cyclic level: Jacobi inside the SCCs until the flux settles
        i_src, i_dst = e_src[intra], e_dst[intra]
        psi[level] = (q[level] + fixed_contrib[level]) / sigma_t
        for it in range(max_inner):
            inner = np.zeros(n, dtype=FLOAT_DTYPE)
            np.add.at(inner, i_dst, coupling * psi[i_src])
            new = (q[level] + fixed_contrib[level] + inner[level]) / sigma_t
            delta = float(np.max(np.abs(new - psi[level]))) if level.size else 0.0
            psi[level] = new
            inner_total += 1
            if delta <= tol:
                break
        else:
            raise ConvergenceError(
                "in-SCC Jacobi failed to converge; reduce `coupling` or"
                " increase `max_inner`"
            )

    # global residual check
    incoming = np.zeros(n, dtype=FLOAT_DTYPE)
    np.add.at(incoming, dst, coupling * psi[src])
    residual = float(np.max(np.abs(sigma_t * psi - q - incoming))) if n else 0.0
    return SweepResult(
        psi=psi,
        levels_processed=schedule.depth,
        scc_inner_iterations=inner_total,
        residual=residual,
    )
