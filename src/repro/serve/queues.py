"""Bounded admission queues with an explicit shed policy.

Unbounded queues turn overload into unbounded latency; the service's
run queue is a :class:`BoundedQueue` whose overflow behavior is an
explicit :class:`ShedPolicy` decision, never silent growth:

* ``REJECT_NEW`` (default) — a full queue sheds the *arriving* job
  (classic load shedding: admitted work keeps its place);
* ``DROP_OLDEST`` — a full queue evicts the *oldest queued* job to
  admit the new one (freshness-first, e.g. for query-dominated loads
  where a stale read is worth less than a fresh one).

Either way the shed victim reaches the ``SHED`` terminal state with
reason ``"backpressure"`` — the accounting never loses a job.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Iterator, Optional

from .jobs import Job, JobKind

__all__ = ["ShedPolicy", "BoundedQueue"]


class ShedPolicy(str, enum.Enum):
    """What a full queue sheds."""

    REJECT_NEW = "reject-new"
    DROP_OLDEST = "drop-oldest"

    def __str__(self) -> str:
        return self.value


class BoundedQueue:
    """FIFO run queue with a hard capacity and an explicit shed policy."""

    def __init__(
        self,
        capacity: int,
        *,
        policy: ShedPolicy = ShedPolicy.REJECT_NEW,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.policy = ShedPolicy(policy)
        self._q: "deque[Job]" = deque()
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.capacity

    def offer(self, job: Job) -> "Job | None":
        """Enqueue *job*; returns the shed victim, if any.

        None means the job was admitted with room to spare.  Under
        ``REJECT_NEW`` a full queue returns *job* itself (not
        enqueued); under ``DROP_OLDEST`` it returns the evicted head
        (*job* is enqueued).
        """
        victim: Optional[Job] = None
        if self.full:
            if self.policy is ShedPolicy.REJECT_NEW:
                return job
            victim = self._q.popleft()
        self._q.append(job)
        self.peak_depth = max(self.peak_depth, len(self._q))
        return victim

    def pop_eligible(self, busy_graphs: "set[str]") -> "Job | None":
        """Dequeue the first job whose graph handle is not locked.

        ``UPDATE``/``QUERY`` jobs serialize per graph (they touch the
        single-writer :class:`~repro.dynamic.DynamicGraph` handle); a
        job against a busy graph stays queued, in order, while later
        jobs against free graphs may overtake it — head-of-line
        blocking is per-graph, not global.  ``SOLVE`` jobs read an
        immutable committed snapshot and are always eligible.
        """
        for i, job in enumerate(self._q):
            if job.spec.kind is JobKind.SOLVE or job.spec.graph not in busy_graphs:
                del self._q[i]
                return job
        return None
