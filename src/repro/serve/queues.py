"""Bounded admission queues with an explicit shed policy.

Unbounded queues turn overload into unbounded latency; the service's
run queue is a :class:`BoundedQueue` whose overflow behavior is an
explicit :class:`ShedPolicy` decision, never silent growth:

* ``REJECT_NEW`` (default) — a full queue sheds the *arriving* job
  (classic load shedding: admitted work keeps its place);
* ``DROP_OLDEST`` — a full queue evicts the *oldest queued* job to
  admit the new one (freshness-first, e.g. for query-dominated loads
  where a stale read is worth less than a fresh one).  Victim choice
  is **eligible-aware**: the same per-graph eligibility view that
  :meth:`BoundedQueue.pop_eligible` dispatches with also picks the
  victim — the oldest job *blocked* behind a busy graph sheds first
  (it was not about to run anyway), and only when every queued job is
  dispatch-eligible does the plain oldest job shed.

Either way the shed victim reaches the ``SHED`` terminal state with
reason ``"backpressure"`` — the accounting never loses a job, and the
victim's record carries how long it waited in the queue
(``Job.queued_at`` is stamped at :meth:`BoundedQueue.offer`; the
service puts ``waited_s`` on the SHED decision).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Iterator, Optional

from .jobs import Job, JobKind

__all__ = ["ShedPolicy", "BoundedQueue"]


class ShedPolicy(str, enum.Enum):
    """What a full queue sheds."""

    REJECT_NEW = "reject-new"
    DROP_OLDEST = "drop-oldest"

    def __str__(self) -> str:
        return self.value


class BoundedQueue:
    """FIFO run queue with a hard capacity and an explicit shed policy."""

    def __init__(
        self,
        capacity: int,
        *,
        policy: ShedPolicy = ShedPolicy.REJECT_NEW,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.policy = ShedPolicy(policy)
        self._q: "deque[Job]" = deque()
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.capacity

    def offer(
        self,
        job: Job,
        *,
        now: float = 0.0,
        busy_graphs: "frozenset[str] | set[str]" = frozenset(),
    ) -> "Job | None":
        """Enqueue *job* at *now*; returns the shed victim, if any.

        None means the job was admitted with room to spare.  Under
        ``REJECT_NEW`` a full queue returns *job* itself (not
        enqueued); under ``DROP_OLDEST`` it returns the evicted victim
        (*job* is enqueued) — the oldest job *ineligible* for dispatch
        against *busy_graphs* when one exists, else the oldest job,
        so eviction and dispatch share one eligibility view.

        Every admitted job gets ``job.queued_at = now`` so a later
        shed can account its queue-wait time.
        """
        victim: Optional[Job] = None
        if self.full:
            if self.policy is ShedPolicy.REJECT_NEW:
                job.queued_at = float(now)
                return job
            victim = self._evict_victim(busy_graphs)
        job.queued_at = float(now)
        self._q.append(job)
        self.peak_depth = max(self.peak_depth, len(self._q))
        return victim

    def _evict_victim(self, busy_graphs: "frozenset[str] | set[str]") -> Job:
        """The DROP_OLDEST victim: oldest blocked job, else the head."""
        for i, job in enumerate(self._q):
            if job.spec.kind is not JobKind.SOLVE and job.spec.graph in busy_graphs:
                del self._q[i]
                return job
        return self._q.popleft()

    def pop_eligible(self, busy_graphs: "set[str]") -> "Job | None":
        """Dequeue the first job whose graph handle is not locked.

        ``UPDATE``/``QUERY`` jobs serialize per graph (they touch the
        single-writer :class:`~repro.dynamic.DynamicGraph` handle); a
        job against a busy graph stays queued, in order, while later
        jobs against free graphs may overtake it — head-of-line
        blocking is per-graph, not global.  ``SOLVE`` jobs read an
        immutable committed snapshot and are always eligible.
        """
        for i, job in enumerate(self._q):
            if job.spec.kind is JobKind.SOLVE or job.spec.graph not in busy_graphs:
                del self._q[i]
                return job
        return None

    def requeue(self, jobs: "list[Job]") -> None:
        """Return already-admitted *jobs* to the queue head, in order.

        Used when a coalesced leader crashes: its followers go back to
        the front (they are the oldest waiting work).  Capacity is
        deliberately not re-enforced — these jobs were admitted once;
        shedding them for their leader's crash would double-penalize —
        so the queue may transiently exceed ``capacity`` until the
        next dispatch drains it.
        """
        for job in reversed(jobs):
            self._q.appendleft(job)
        self.peak_depth = max(self.peak_depth, len(self._q))

    def extract(self, pred: "Callable[[Job], bool]") -> "list[Job]":
        """Remove and return every queued job matching *pred*, in order.

        The coalescing sweep: the service pulls compatible reads (or
        mergeable updates) out of the queue to attach them to a leader
        without disturbing the relative order of everything else.
        *pred* is called exactly once per queued job, in FIFO order, so
        stateful predicates (e.g. "stop at the first incompatible job
        on this graph") are safe.
        """
        matched: "list[Job]" = []
        keep: "list[Job]" = []
        for job in self._q:
            (matched if pred(job) else keep).append(job)
        if matched:
            self._q.clear()
            self._q.extend(keep)
        return matched
