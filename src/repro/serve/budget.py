"""Per-tenant resource budgets: hard admission limits.

A :class:`Budget` caps what one tenant may consume over the service's
lifetime, in the two currencies of the cost model: **model-seconds**
(estimated device time) and **bytes** (DRAM traffic, ``bytes_moved +
bytes_streamed``).  The :class:`BudgetLedger` tracks per-tenant spend
and enforces the limits at *admission*: a tenant at or over either
limit cannot start new work — the job is ``REJECTED`` with a
structured :class:`BudgetExceeded` payload naming the tenant, the
exhausted resource, the limit, and the spend.

Charging is at *attempt completion* and covers **all executed
attempts, including crashed ones** — a tenant whose jobs crash and
retry pays for the wasted work, which is exactly the incentive shape a
multi-tenant service needs (see ``docs/serve.md`` §4 for the
semantics and their rationale).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Budget", "BudgetExceeded", "BudgetLedger", "UNLIMITED"]

#: sentinel for "no limit on this resource".
UNLIMITED = float("inf")


@dataclass(frozen=True)
class Budget:
    """Hard per-tenant limits (``inf`` = unlimited)."""

    model_seconds: float = UNLIMITED
    bytes: float = UNLIMITED

    def __post_init__(self) -> None:
        if self.model_seconds < 0 or self.bytes < 0:
            raise ValueError("budget limits must be >= 0")


@dataclass(frozen=True)
class BudgetExceeded:
    """Structured rejection payload (attached to ``job.error``)."""

    tenant: str
    resource: str          # "model_seconds" | "bytes"
    limit: float
    spent: float

    def as_dict(self) -> "dict[str, object]":
        return {
            "error": "BudgetExceeded",
            "tenant": self.tenant,
            "resource": self.resource,
            "limit": self.limit,
            "spent": self.spent,
        }


class BudgetLedger:
    """Per-tenant spend against per-tenant :class:`Budget` limits.

    Tenants without an explicit budget get ``default`` (unlimited
    unless the service says otherwise).
    """

    def __init__(self, *, default: "Budget | None" = None) -> None:
        self.default = default or Budget()
        self._budgets: "dict[str, Budget]" = {}
        self._spent: "dict[str, dict[str, float]]" = {}

    def set_budget(self, tenant: str, budget: Budget) -> None:
        self._budgets[tenant] = budget

    def budget_of(self, tenant: str) -> Budget:
        return self._budgets.get(tenant, self.default)

    def spent_of(self, tenant: str) -> "dict[str, float]":
        return dict(self._spent.get(tenant, {"model_seconds": 0.0, "bytes": 0.0}))

    # ------------------------------------------------------------------
    def check(self, tenant: str) -> "BudgetExceeded | None":
        """Admission test: None when the tenant may start new work.

        The limit is *hard on starting work*, not on total spend: a
        job admitted under the limit may finish over it (its charges
        land at completion), after which the tenant is locked out.
        """
        budget = self.budget_of(tenant)
        spent = self._spent.get(tenant, {})
        for resource, limit in (
            ("model_seconds", budget.model_seconds),
            ("bytes", budget.bytes),
        ):
            used = spent.get(resource, 0.0)
            if used >= limit:
                return BudgetExceeded(
                    tenant=tenant, resource=resource, limit=limit, spent=used
                )
        return None

    def charge(self, tenant: str, *, model_seconds: float, bytes: float) -> None:
        """Record one attempt's consumption (crashed attempts included)."""
        if model_seconds < 0 or bytes < 0:
            raise ValueError("charges must be >= 0")
        row = self._spent.setdefault(
            tenant, {"model_seconds": 0.0, "bytes": 0.0}
        )
        row["model_seconds"] += float(model_seconds)
        row["bytes"] += float(bytes)

    def snapshot(self) -> "dict[str, dict[str, float]]":
        """Spend by tenant (JSON-safe copy)."""
        return {t: dict(row) for t, row in sorted(self._spent.items())}
