"""Per-workload circuit breakers: incidents become degraded operation.

A crashing workload (one ``graph:kind`` pair under a fault plan) would
otherwise occupy workers with doomed attempts and their retries,
starving healthy workloads and inflating everyone's tail latency.  The
:class:`CircuitBreaker` is the standard three-state remedy:

* **CLOSED** — normal operation; consecutive failures are counted,
  and hitting ``failure_threshold`` opens the breaker.
* **OPEN** — jobs for the workload are fast-failed at admission
  (terminal state ``SHED``, reason ``"breaker-open"``) without
  touching a worker; after ``cooldown_s`` of simulated time the next
  arrival is allowed through as a probe.
* **HALF_OPEN** — exactly one probe job is in flight; its success
  closes the breaker, its failure re-opens it for another cooldown.

Every transition is recorded (service metrics + trace counters) and
listed in :meth:`CircuitBreaker.as_dict` for the service report.
"""

from __future__ import annotations

import enum

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:
        return self.value


class CircuitBreaker:
    """One workload's failure-isolation state machine (simulated time)."""

    def __init__(
        self,
        workload: str,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 0.005,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.workload = workload
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.probe_in_flight = False
        self.opened = 0            # lifetime transition tallies
        self.reopened = 0
        self.closed_after_probe = 0
        self.transitions: "list[dict]" = []

    # ------------------------------------------------------------------
    def _transition(self, now: float, state: BreakerState) -> None:
        self.state = state
        self.transitions.append({"t": float(now), "state": str(state)})

    def allow(self, now: float) -> bool:
        """May a job for this workload proceed at *now*?

        OPEN past its cooldown admits exactly one probe (moving to
        HALF_OPEN); a second job while the probe is in flight is
        refused.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now < self.open_until:
                return False
            self._transition(now, BreakerState.HALF_OPEN)
            self.probe_in_flight = True
            return True
        # HALF_OPEN: one probe at a time
        if self.probe_in_flight:
            return False
        self.probe_in_flight = True
        return True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.probe_in_flight = False
            self.closed_after_probe += 1
            self._transition(now, BreakerState.CLOSED)

    def record_failure(self, now: float) -> bool:
        """Record one failed attempt; returns True when this opens (or
        re-opens) the breaker."""
        if self.state is BreakerState.HALF_OPEN:
            # the probe failed: straight back to OPEN for a new cooldown
            self.probe_in_flight = False
            self.open_until = now + self.cooldown_s
            self.reopened += 1
            self._transition(now, BreakerState.OPEN)
            return True
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.open_until = now + self.cooldown_s
            self.opened += 1
            self._transition(now, BreakerState.OPEN)
            return True
        return False

    # ------------------------------------------------------------------
    def as_dict(self) -> "dict[str, object]":
        return {
            "workload": self.workload,
            "state": str(self.state),
            "consecutive_failures": self.consecutive_failures,
            "opened": self.opened,
            "reopened": self.reopened,
            "closed_after_probe": self.closed_after_probe,
            "transitions": list(self.transitions),
        }
