"""The generation-keyed solve cache: repeat reads stop re-solving.

Zipf-hot graphs make the control plane re-run the same cold solve over
and over: every ``SOLVE``/``QUERY`` against graph *g* between two
committed updates computes exactly the same labelling.  The
:class:`SolveCache` memoizes that work, keyed by

    ``(graph, generation, engine, backend)``

— the four coordinates that fully determine a read's result.  Labels
are bit-identical across engines and backends by the engine contract,
but the key keeps them separate anyway so a hit can never blur an
accounting boundary (the cached per-run profile is engine-specific).

Semantics:

* **a hit costs nothing.**  The service completes the job from the
  cached labels at zero device cost — no worker slot, no model-seconds,
  no bytes charged (see ``docs/serve.md`` §6 for the share rule that
  covers the *first* execution).
* **generations invalidate, never versions collide.**  A graph's
  committed generation only ever advances, and every entry is keyed by
  the generation it was computed at, so a stale entry can never be
  *served* — invalidation (:meth:`SolveCache.invalidate`) exists to
  reclaim the bytes and keep the "entries never outlive their
  generation" invariant testable.
* **bounded by bytes, evicted LRU.**  Each entry costs its label
  array's bytes (plus a fixed overhead per entry); inserting past
  ``max_bytes`` evicts least-recently-used entries first.  Hits,
  misses, evictions, and invalidations are all counted and surfaced
  through :class:`~repro.serve.metrics.ServiceMetrics` and the
  ``serve:cache_*`` trace counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["SolveCache", "CacheEntry", "DEFAULT_CACHE_BYTES"]

#: default byte budget — generous for the bench-scale graphs, small
#: enough that a large multi-tenant corpus actually exercises eviction.
DEFAULT_CACHE_BYTES = 4 << 20

#: flat per-entry bookkeeping cost added to the label bytes.
ENTRY_OVERHEAD_BYTES = 256


@dataclass
class CacheEntry:
    """One memoized read: the labels at a (graph, generation) point."""

    labels: np.ndarray
    num_sccs: int
    generation: int
    #: ProfileReport dict of the solve that produced the labels (None
    #: for entries populated by a query's label read-out).
    profile: "dict | None" = None
    hits: int = 0

    @property
    def nbytes(self) -> int:
        return int(self.labels.nbytes) + ENTRY_OVERHEAD_BYTES


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    puts: int = 0
    stale_puts: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "puts": self.puts,
            "stale_puts": self.stale_puts,
        }


class SolveCache:
    """Bounded LRU of :class:`CacheEntry` under a byte budget."""

    def __init__(self, *, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @staticmethod
    def key(
        graph: str,
        generation: int,
        engine: "str | None",
        backend: "str | None",
    ) -> tuple:
        return (graph, int(generation), engine, backend)

    # ------------------------------------------------------------------
    def get(self, key: tuple) -> "CacheEntry | None":
        """LRU lookup; counts a hit on success.

        A ``None`` is *not* counted as a miss here — the dispatch sweep
        probes every queued read on every pass, so misses are counted
        once per actual read execution via :meth:`count_miss`.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stats.hits += 1
        return entry

    def count_miss(self) -> None:
        """Record one read execution that found no usable entry."""
        self.stats.misses += 1

    def put(self, key: tuple, entry: CacheEntry) -> "list[tuple]":
        """Insert (replacing any same-key entry); returns evicted keys.

        An entry larger than the whole budget is refused (counted as a
        ``stale_put`` — it could only ever evict everything for one
        uncacheable result).
        """
        if entry.nbytes > self.max_bytes:
            self.stats.stale_puts += 1
            return []
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= old.nbytes
        self._entries[key] = entry
        self.bytes += entry.nbytes
        self.stats.puts += 1
        evicted: "list[tuple]" = []
        while self.bytes > self.max_bytes:
            victim_key, victim = self._entries.popitem(last=False)
            self.bytes -= victim.nbytes
            self.stats.evictions += 1
            evicted.append(victim_key)
        return evicted

    def invalidate(self, graph: str, current_generation: int) -> int:
        """Drop *graph*'s entries from generations other than *current*.

        Called when a graph's committed generation advances; returns
        the number of entries dropped.  Entries at the (new) current
        generation are kept — they can only exist when a read committed
        against the already-advanced handle, which is exactly the state
        future reads will see.
        """
        stale = [
            k for k, e in self._entries.items()
            if k[0] == graph and e.generation != current_generation
        ]
        for k in stale:
            self.bytes -= self._entries.pop(k).nbytes
            self.stats.invalidations += 1
        return len(stale)

    # ------------------------------------------------------------------
    def entries(self) -> "list[tuple[tuple, CacheEntry]]":
        """Snapshot of (key, entry) pairs in LRU→MRU order."""
        return list(self._entries.items())

    def as_dict(self) -> "dict[str, Any]":
        return {
            "max_bytes": self.max_bytes,
            "bytes": self.bytes,
            "entries": len(self._entries),
            **self.stats.as_dict(),
        }
