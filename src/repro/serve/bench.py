"""The ``repro serve`` load generator and chaos harness.

**Workload.**  A seeded Zipf world: ``num_graphs`` named graphs whose
popularity follows ``1/i^zipf_s`` (graph 0 is hot, the tail is cold),
a solve/update/query job mix, and **open-loop** arrivals — exponential
inter-arrival times in simulated seconds whose rate is calibrated from
the cold-solve cost of the hot graph to a target utilization, so
``utilization > 1`` genuinely overloads the service (arrivals do not
slow down when the service backs up; that is what makes backpressure
and shedding observable).  Everything is drawn from one
``numpy`` generator seeded by ``seed``: the same config produces the
same workload, byte for byte.

**Update safety.**  Deletion batches draw from *disjoint slices of the
initial edge set* (insertions only ever add), so every committed
deletion is valid both live and in replay, regardless of which update
jobs crash, shed, or dead-letter.

**Verification (chaos mode).**  :func:`verify_report` replays the
committed updates (DONE update jobs, in generation order; coalesced
constituents regrouped into their one merged apply) against a fresh
handle and checks, at every generation a DONE solve/query job
observed — whether it executed cold, hit the solve cache, or coalesced
onto a leader — that the job's labels are **bit-identical** to an
unserved ``repro.solve`` of the reconstructed snapshot — the service
adds scheduling, not semantics.  It also checks the terminal-state
invariant: every submitted job ends in exactly one of
done / rejected / shed / dead-letter.

**The breaker win.**  :func:`breaker_comparison` runs the same crash
workload with breakers enabled and disabled; with them disabled,
doomed workloads occupy workers through their full retry ladders, the
queue backs up, and both p99 latency and the backpressure shed rate
measurably degrade — the CI gate asserts this stays true.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..faults.plan import FaultPlan
from ..graph.generators import random_gnm
from ..solver import solve
from .budget import Budget
from .cache import DEFAULT_CACHE_BYTES
from .jobs import JobKind, JobSpec, JobState
from .queues import ShedPolicy
from .service import SccService, ServiceReport, _merge_batches

__all__ = [
    "ServeBenchConfig",
    "run_serve_bench",
    "verify_report",
    "breaker_comparison",
]


@dataclass(frozen=True)
class ServeBenchConfig:
    """One serve-bench scenario (fully determined by its fields)."""

    scenario: str = "zipf-clean"
    num_graphs: int = 4
    graph_vertices: int = 160
    graph_edges: int = 640
    num_jobs: int = 60
    zipf_s: float = 1.1
    #: (solve, update, query) job mix, summing to 1
    mix: "tuple[float, float, float]" = (0.4, 0.3, 0.3)
    #: open-loop arrival rate as a multiple of modelled service capacity
    utilization: float = 1.5
    update_batch: int = 4
    tenants: int = 3
    #: model-seconds budget for tenant-0 (None = unlimited); exercises
    #: the rejection path deterministically
    tenant0_budget_s: "float | None" = None
    workers: int = 2
    wip_limit: "int | None" = None
    queue_capacity: int = 8
    shed_policy: ShedPolicy = ShedPolicy.REJECT_NEW
    #: per-job deadline as a multiple of the calibrated mean service
    #: time (None = no deadline)
    deadline_factor: "float | None" = None
    breakers_enabled: bool = True
    breaker_threshold: int = 3
    #: the PR9 short-circuit layer (docs/serve.md §6); both default on,
    #: and the bench emits a cache-off twin row so the win is gated
    cache_enabled: bool = True
    cache_bytes: int = DEFAULT_CACHE_BYTES
    coalesce_enabled: bool = True
    merge_updates: int = 4
    plan: "FaultPlan | None" = None
    engine: "str | None" = None
    backend: "str | None" = None
    seed: int = 0


def _build_graphs(cfg: ServeBenchConfig) -> "dict[str, Any]":
    return {
        f"g{i}": random_gnm(
            cfg.graph_vertices, cfg.graph_edges, seed=cfg.seed + i
        )
        for i in range(cfg.num_graphs)
    }


def _zipf_weights(k: int, s: float) -> np.ndarray:
    w = 1.0 / np.arange(1, k + 1, dtype=np.float64) ** s
    return w / w.sum()


def build_workload(
    cfg: ServeBenchConfig, *, mean_service_s: float
) -> "list[tuple[float, JobSpec]]":
    """The seeded open-loop job stream: ``[(arrival_s, spec), ...]``."""
    rng = np.random.default_rng(cfg.seed)
    weights = _zipf_weights(cfg.num_graphs, cfg.zipf_s)
    mix = np.asarray(cfg.mix, dtype=np.float64)
    if mix.size != 3 or mix.min() < 0 or not np.isclose(mix.sum(), 1.0):
        raise ValueError(f"mix must be 3 non-negative fractions summing to 1, got {cfg.mix}")
    rate = cfg.utilization * cfg.workers / mean_service_s
    deadline_s = (
        None if cfg.deadline_factor is None
        else cfg.deadline_factor * mean_service_s
    )
    # disjoint per-graph deletion cursors into the initial edge sets:
    # a committed deletion is always of a resident edge (see module doc)
    delete_cursor = {i: 0 for i in range(cfg.num_graphs)}
    kinds = (JobKind.SOLVE, JobKind.UPDATE, JobKind.QUERY)
    jobs: "list[tuple[float, JobSpec]]" = []
    now = 0.0
    for _ in range(cfg.num_jobs):
        now += float(rng.exponential(1.0 / rate))
        gi = int(rng.choice(cfg.num_graphs, p=weights))
        kind = kinds[int(rng.choice(3, p=mix))]
        tenant = f"tenant-{int(rng.integers(cfg.tenants))}"
        insert_edges = delete_edges = None
        if kind is JobKind.UPDATE:
            n = cfg.graph_vertices
            ins_src = rng.integers(0, n, size=cfg.update_batch)
            ins_dst = rng.integers(0, n, size=cfg.update_batch)
            insert_edges = (ins_src.tolist(), ins_dst.tolist())
            start = delete_cursor[gi]
            stop = start + max(cfg.update_batch // 2, 1)
            if stop <= cfg.graph_edges:
                delete_cursor[gi] = stop
                delete_edges = ("initial", start, stop)
        jobs.append((
            now,
            JobSpec(
                tenant=tenant, kind=kind, graph=f"g{gi}",
                insert_edges=insert_edges, delete_edges=delete_edges,
                deadline_s=deadline_s,
            ),
        ))
    return jobs


def _resolve_deletions(spec: JobSpec, initial_edges) -> JobSpec:
    """Materialize an ``("initial", start, stop)`` deletion slice."""
    if spec.delete_edges is None or spec.delete_edges[0] != "initial":
        return spec
    _, start, stop = spec.delete_edges
    src, dst = initial_edges[spec.graph]
    return replace(
        spec,
        delete_edges=(src[start:stop].tolist(), dst[start:stop].tolist()),
    )


def _percentile(values: "list[float]", q: float) -> "float | None":
    """Nearest-rank order statistic from a sorted list (test reference).

    Kept as the exact reference the streaming histogram's bounded-error
    quantiles are checked against (``tests/test_obs.py``); the bench
    rows themselves now report histogram quantiles.
    """
    if not values:
        return None
    rank = max(1, min(len(values), int(np.ceil(q / 100.0 * len(values)))))
    return float(sorted(values)[rank - 1])


def run_serve_bench(
    cfg: ServeBenchConfig, *, verify: bool = False, obs: Any = None
) -> "dict[str, Any]":
    """Run one scenario end to end; returns the JSON-safe result row.

    With ``verify=True`` the row additionally carries the
    :func:`verify_report` outcome (terminal-state invariant + label
    bit-identity against unserved solves) and raises ``AssertionError``
    on any violation — chaos mode's contract.

    *obs* is an optional :class:`repro.obs.ObsRecorder`; one is created
    internally when omitted (the latency quantiles in the row come from
    its streaming histogram either way).  Pass your own to keep the
    time series, timelines, and the finished report for export.
    """
    if obs is None:
        from ..obs import ObsRecorder  # serve->obs is one-way; obs never imports serve

        obs = ObsRecorder()
    graphs = _build_graphs(cfg)
    initial_edges = {name: g.edges() for name, g in graphs.items()}
    # calibrate the arrival rate against the hot graph's cold-solve cost
    mean_service_s = float(
        solve(graphs["g0"], engine=cfg.engine, backend=cfg.backend).model_seconds
    )
    service = SccService(
        workers=cfg.workers,
        wip_limit=cfg.wip_limit,
        queue_capacity=cfg.queue_capacity,
        shed_policy=cfg.shed_policy,
        engine=cfg.engine,
        backend=cfg.backend,
        faults=cfg.plan,
        breakers_enabled=cfg.breakers_enabled,
        breaker_threshold=cfg.breaker_threshold,
        cache_enabled=cfg.cache_enabled,
        cache_bytes=cfg.cache_bytes,
        coalesce_enabled=cfg.coalesce_enabled,
        merge_updates=cfg.merge_updates,
        observer=obs,
        seed=cfg.seed,
    )
    for name, g in graphs.items():
        service.register_graph(name, g)
    if cfg.tenant0_budget_s is not None:
        service.set_budget("tenant-0", Budget(model_seconds=cfg.tenant0_budget_s))
    for at, spec in build_workload(cfg, mean_service_s=mean_service_s):
        service.submit(_resolve_deletions(spec, initial_edges), at=at)
    report = service.run()
    obs.finalize(report)

    by_state = report.by_state()
    submitted = len(report.jobs)
    done = by_state.get("done", 0)
    hist = obs.latency_hist
    quantiles = obs.quantiles_ms(0.5, 0.99, 0.999)
    m = report.metrics
    row: "dict[str, Any]" = {
        "algorithm": "serve-bench",
        "graph": cfg.scenario,
        "engine": cfg.engine,
        "backend": cfg.backend,
        "plan": cfg.plan.to_dict() if cfg.plan is not None else None,
        "breakers_enabled": cfg.breakers_enabled,
        "workers": cfg.workers,
        "queue_capacity": cfg.queue_capacity,
        "utilization_target": cfg.utilization,
        "jobs": submitted,
        "by_state": by_state,
        "done": done,
        "makespan_s": report.makespan_s,
        "throughput_jps": (
            done / report.makespan_s if report.makespan_s > 0 else 0.0
        ),
        # bounded-error streaming-histogram quantiles (repro.obs); the
        # sketch guarantees each is within one log-bucket width of the
        # nearest-rank sorted-list value
        "p50_ms": quantiles["p50"],
        "p99_ms": quantiles["p99"],
        "p999_ms": quantiles["p999"],
        "quantile_error": hist.quantile_error,
        "shed_rate": m["shed_backpressure"] / submitted if submitted else 0.0,
        "breaker_shed_rate": m["shed_breaker"] / submitted if submitted else 0.0,
        "reject_rate": m["rejected_budget"] / submitted if submitted else 0.0,
        "dead_letter_rate": m["dead_letter"] / submitted if submitted else 0.0,
        "retries": m["retries"],
        "crashes": m["crashed"],
        "breaker_opened": m["breaker_opened"],
        "cache_enabled": cfg.cache_enabled,
        "coalesce_enabled": cfg.coalesce_enabled,
        "cache_hits": m["cache_hits"],
        "coalesced_reads": m["coalesced_reads"],
        "coalesced_updates": m["coalesced_updates"],
        "cache": report.cache,
        "worker_utilization": service.pool.utilization(report.makespan_s),
        "metrics": m.as_dict(),
    }
    if verify:
        outcome = verify_report(report, graphs, engine=cfg.engine,
                                backend=cfg.backend)
        row["verified"] = outcome
        if not outcome["ok"]:
            raise AssertionError(
                f"serve chaos verification failed: {outcome['failures']}"
            )
    return row


# ----------------------------------------------------------------------
# chaos verification
# ----------------------------------------------------------------------

def _final_detail(job) -> "dict | None":
    """The attempt detail of the job's committed execution, if any."""
    for detail in reversed(job.attempts_detail):
        if "generation" in detail:
            return detail
    return None


def _final_generation(job) -> int:
    detail = _final_detail(job)
    return int(detail["generation"]) if detail is not None else 0


def _merge_index(job) -> int:
    """Position inside a merged update's single apply (0 = the leader)."""
    detail = _final_detail(job)
    return int(detail.get("merge_index", 0)) if detail is not None else 0


def verify_report(
    report: ServiceReport,
    graphs: "dict[str, Any]",
    *,
    engine: "str | None" = None,
    backend: "str | None" = None,
) -> "dict[str, Any]":
    """Prove the service added scheduling, not semantics.

    Checks (returned under ``"failures"`` when violated):

    1. **terminal** — every job is in exactly one terminal state and
       carries a decision history ending in it;
    2. **retry bound** — no job exceeded ``plan.max_retries`` retries;
    3. **bit-identity** — replaying the committed updates, every DONE
       solve/query job's labels equal an unserved ``repro.solve`` of
       the snapshot at the generation the job observed.
    """
    from ..dynamic.graph import DynamicGraph

    failures: "list[str]" = []
    checked = 0
    for job in report.jobs:
        if not job.terminal:
            failures.append(f"job {job.id} not terminal: {job.state}")
        if not job.decisions or job.decisions[-1]["decision"] != str(job.state):
            failures.append(f"job {job.id} decision history does not end in"
                            f" its terminal state")
    jobs_by_graph: "dict[str, list]" = {name: [] for name in graphs}
    for job in report.jobs:
        if job.state is JobState.DONE:
            jobs_by_graph[job.spec.graph].append(job)
    for name, initial in graphs.items():
        done_jobs = jobs_by_graph[name]
        # coalesced update constituents committed through one merged
        # apply and share its final generation — replay groups them
        # back into that single apply, in merge order (two *distinct*
        # committed applies can never share a final generation, so the
        # grouping is unambiguous)
        update_groups: "dict[int, list]" = {}
        for j in done_jobs:
            if j.spec.kind is JobKind.UPDATE:
                update_groups.setdefault(_final_generation(j), []).append(j)
        updates = [
            sorted(update_groups[gen], key=_merge_index)
            for gen in sorted(update_groups)
        ]
        checks: "dict[int, list]" = {}
        for job in done_jobs:
            if job.spec.kind is JobKind.UPDATE:
                continue
            labels = np.asarray(job.result.labels)
            checks.setdefault(_final_generation(job), []).append((job, labels))

        replay = DynamicGraph(initial, engine=engine, backend=backend)

        def run_checks() -> None:
            nonlocal checked
            for job, labels in checks.pop(replay.generation, []):
                cold = np.asarray(
                    solve(replay.graph(), engine=engine, backend=backend).labels
                )
                if not np.array_equal(labels, cold):
                    failures.append(
                        f"job {job.id} ({job.spec.kind}) labels differ from"
                        f" unserved solve of {name} at generation"
                        f" {replay.generation}"
                    )
                checked += 1

        run_checks()
        for group in updates:
            specs = [j.spec for j in group]
            replay.apply(
                deletions=_merge_batches(s.delete_edges for s in specs),
                insertions=_merge_batches(s.insert_edges for s in specs),
            )
            expect = _final_generation(group[0])
            if replay.generation != expect:
                ids = [j.id for j in group]
                failures.append(
                    f"replay of {name} reached generation"
                    f" {replay.generation}, update job(s) {ids} committed at"
                    f" {expect}"
                )
            run_checks()
        for gen in sorted(checks):
            failures.append(
                f"{name}: {len(checks[gen])} DONE job(s) observed"
                f" generation {gen}, never reached in replay"
            )
    return {"ok": not failures, "checked": checked, "failures": failures}


# ----------------------------------------------------------------------
# the breaker win
# ----------------------------------------------------------------------

def breaker_comparison(
    cfg: ServeBenchConfig, *, verify: bool = False, require_win: bool = True
) -> "dict[str, Any]":
    """Same crash workload, breakers on vs off; asserts the win.

    Returns both rows plus the degradation factors.  With
    ``require_win`` (the default) raises ``AssertionError`` unless
    disabling breakers measurably degrades **both** p99 latency and
    the backpressure shed rate — the service's core resilience claim,
    gated in CI at the committed baseline's load.  Pass
    ``require_win=False`` to measure without asserting (the win is
    load-dependent: a queue that never fills sheds nothing either
    way).
    """
    if cfg.plan is None or not cfg.plan.has_serve_faults:
        raise ValueError("breaker_comparison needs a serve-fault plan")
    enabled = run_serve_bench(
        replace(cfg, breakers_enabled=True,
                scenario=cfg.scenario + "+breakers"),
        verify=verify,
    )
    disabled = run_serve_bench(
        replace(cfg, breakers_enabled=False,
                scenario=cfg.scenario + "-nobreakers"),
        verify=verify,
    )
    p99_on, p99_off = enabled["p99_ms"], disabled["p99_ms"]
    p99_ratio = (
        p99_off / p99_on if p99_on and p99_off else float("inf")
    )
    shed_delta = disabled["shed_rate"] - enabled["shed_rate"]
    win = {
        "p99_degradation": p99_ratio,
        "shed_rate_delta": shed_delta,
        "ok": p99_ratio > 1.0 and shed_delta > 0.0,
    }
    if require_win and not win["ok"]:
        raise AssertionError(
            "breaker win not observed: disabling breakers should degrade"
            f" p99 (x{p99_ratio:.3f}) and shed rate (+{shed_delta:.4f})"
        )
    return {"enabled": enabled, "disabled": disabled, "breaker_win": win}
