"""SCC-as-a-service: a deterministic multi-tenant control plane.

The data plane (engines, dynamic graphs, faults, profiling) answers
*one* question at a time; :mod:`repro.serve` puts a production-shaped
request layer in front of it — tenants, named persistent graphs,
budgets, bounded queues, WIP-limited workers, bounded retries,
dead-letter lanes, and circuit breakers — all in simulated time with
every random decision plan-seeded, so a service run replays bit for
bit.

Quick start::

    from repro.graph import random_gnm
    from repro.serve import SccService, JobSpec, JobKind, Budget

    svc = SccService(workers=2, queue_capacity=8)
    svc.register_graph("main", random_gnm(512, 2048, seed=0))
    svc.set_budget("alice", Budget(model_seconds=1.0))
    svc.submit(JobSpec("alice", JobKind.SOLVE, "main"), at=0.0)
    report = svc.run()
    report.by_state()          # {"done": 1}

Module map:

* :mod:`~repro.serve.jobs` — job specs, lifecycle states, decision
  history, replayable artifacts;
* :mod:`~repro.serve.budget` — per-tenant hard limits and the
  structured ``BudgetExceeded`` rejection payload;
* :mod:`~repro.serve.queues` — bounded run queue with an explicit
  shed policy;
* :mod:`~repro.serve.cache` — the generation-keyed solve cache behind
  the cache/coalesce fast paths;
* :mod:`~repro.serve.breaker` — per-workload circuit breakers;
* :mod:`~repro.serve.workers` — the WIP-limited worker pool;
* :mod:`~repro.serve.service` — the control plane itself;
* :mod:`~repro.serve.metrics` — decision counters + Prometheus text;
* :mod:`~repro.serve.bench` — the seeded Zipf load generator and the
  chaos harness (``repro serve`` CLI).

See ``docs/serve.md`` for the architecture and state machines.
"""

from .bench import ServeBenchConfig, run_serve_bench
from .breaker import BreakerState, CircuitBreaker
from .budget import UNLIMITED, Budget, BudgetExceeded, BudgetLedger
from .cache import DEFAULT_CACHE_BYTES, CacheEntry, SolveCache
from .jobs import TERMINAL_STATES, Job, JobKind, JobSpec, JobState
from .metrics import ServiceMetrics, to_prometheus
from .queues import BoundedQueue, ShedPolicy
from .service import SccService, ServiceReport
from .workers import Worker, WorkerPool

__all__ = [
    "SccService",
    "ServiceReport",
    "Job",
    "JobKind",
    "JobSpec",
    "JobState",
    "TERMINAL_STATES",
    "Budget",
    "BudgetExceeded",
    "BudgetLedger",
    "UNLIMITED",
    "BoundedQueue",
    "ShedPolicy",
    "SolveCache",
    "CacheEntry",
    "DEFAULT_CACHE_BYTES",
    "BreakerState",
    "CircuitBreaker",
    "Worker",
    "WorkerPool",
    "ServiceMetrics",
    "to_prometheus",
    "ServeBenchConfig",
    "run_serve_bench",
]
