"""The worker pool: WIP-limited execution slots over virtual devices.

A :class:`Worker` is one execution slot backed by its own
:class:`~repro.device.VirtualDevice` model; the :class:`WorkerPool`
bounds work-in-progress to ``min(len(workers), wip_limit)`` occupied
slots — the WIP limit is the knob that turns overload into queueing
(and then, past the bounded queue, into explicit shedding) instead of
unbounded concurrency.

Workers are *slots*, not threads: the service executes attempts
host-side at dispatch time and advances simulated time by the
attempt's modelled service seconds, so a pool of N workers is N
concurrent service intervals on the simulated clock.
"""

from __future__ import annotations

from ..device.executor import VirtualDevice
from ..device.spec import A100, DeviceSpec

__all__ = ["Worker", "WorkerPool"]


class Worker:
    """One execution slot (its device accumulates lifetime charges)."""

    def __init__(self, worker_id: int, spec: DeviceSpec) -> None:
        self.id = worker_id
        self.spec = spec
        self.device = VirtualDevice(spec)
        self.busy = False
        self.jobs_done = 0
        self.crashes = 0
        self.busy_s = 0.0      # total simulated seconds occupied

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "busy" if self.busy else "idle"
        return f"<Worker {self.id} {self.spec.name} {state}>"


class WorkerPool:
    """Fixed pool of workers under a work-in-progress limit."""

    def __init__(
        self,
        num_workers: int,
        *,
        spec: "DeviceSpec | None" = None,
        wip_limit: "int | None" = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        spec = spec or A100
        self.workers = [Worker(i, spec) for i in range(num_workers)]
        self.wip_limit = (
            num_workers if wip_limit is None else min(int(wip_limit), num_workers)
        )
        if self.wip_limit < 1:
            raise ValueError(f"wip_limit must be >= 1, got {wip_limit}")

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def in_flight(self) -> int:
        return sum(1 for w in self.workers if w.busy)

    @property
    def has_capacity(self) -> bool:
        return self.in_flight < self.wip_limit

    def acquire(self) -> "Worker | None":
        """Claim the lowest-id idle worker (deterministic), if any."""
        if not self.has_capacity:
            return None
        for worker in self.workers:
            if not worker.busy:
                worker.busy = True
                return worker
        return None

    def release(self, worker: Worker, *, busy_s: float = 0.0) -> None:
        worker.busy = False
        worker.busy_s += float(busy_s)

    def utilization(self, makespan_s: float) -> float:
        """Mean fraction of the makespan each worker spent occupied."""
        if makespan_s <= 0:
            return 0.0
        total = sum(w.busy_s for w in self.workers)
        return total / (makespan_s * len(self.workers))

    def as_dict(self) -> "dict[str, object]":
        return {
            "num_workers": len(self.workers),
            "wip_limit": self.wip_limit,
            "workers": [
                {
                    "id": w.id,
                    "device": w.spec.name,
                    "jobs_done": w.jobs_done,
                    "crashes": w.crashes,
                    "busy_s": w.busy_s,
                }
                for w in self.workers
            ],
        }
