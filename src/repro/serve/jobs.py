"""Job records: the unit of work the service schedules.

A :class:`JobSpec` is what a tenant submits — *which* named graph,
*what* operation (cold solve / incremental update / label query), and
under what deadline.  The service wraps it in a :class:`Job`, the
mutable record that accumulates every control-plane decision made about
it (admission, dispatch, crash, retry, shed, breaker) as a timestamped
decision history, and ends in **exactly one terminal state**:

==============  =====================================================
state           meaning
==============  =====================================================
``DONE``        executed successfully; ``job.result`` holds the output
``REJECTED``    refused at admission (tenant over budget);
                ``job.error`` holds the :class:`~repro.serve.budget.
                BudgetExceeded` payload
``SHED``        load-shed: the run queue was full (backpressure) or
                the workload's circuit breaker was open (fast-fail)
``DEAD_LETTER`` accepted but never completed: retries exhausted or the
                per-job deadline expired
==============  =====================================================

The decision history plus the per-attempt trace/profile artifact
(:meth:`Job.artifact`) is the replayable record — `docs/serve.md` §5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["JobKind", "JobState", "JobSpec", "Job", "TERMINAL_STATES"]


class JobKind(str, enum.Enum):
    """What a job asks the data plane to do."""

    SOLVE = "solve"      # cold repro.solve on the graph's current snapshot
    UPDATE = "update"    # batched edge insertions/deletions on the handle
    QUERY = "query"      # incremental label read (DynamicGraph.query)

    def __str__(self) -> str:
        return self.value


class JobState(str, enum.Enum):
    """Job lifecycle; the last four are terminal (exactly one is reached)."""

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    RETRY_WAIT = "retry-wait"
    DONE = "done"
    REJECTED = "rejected"
    SHED = "shed"
    DEAD_LETTER = "dead-letter"

    def __str__(self) -> str:
        return self.value

    @property
    def terminal(self) -> bool:
        return self in TERMINAL_STATES


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.REJECTED, JobState.SHED, JobState.DEAD_LETTER}
)


@dataclass(frozen=True)
class JobSpec:
    """What a tenant submits (immutable).

    ``insert_edges`` / ``delete_edges`` are ``(src, dst)`` sequence
    pairs for ``UPDATE`` jobs; ``deadline_s`` is relative to submit
    time (None = the service default, which may also be None = no
    deadline).
    """

    tenant: str
    kind: JobKind
    graph: str
    insert_edges: "tuple | None" = None
    delete_edges: "tuple | None" = None
    deadline_s: "float | None" = None

    @property
    def workload(self) -> str:
        """Breaker key: one breaker per (graph, kind) workload."""
        return f"{self.graph}:{self.kind}"


@dataclass
class Job:
    """One submitted job: spec + every decision the control plane made."""

    id: int
    spec: JobSpec
    submit_s: float
    state: JobState = JobState.PENDING
    attempts: int = 0
    #: simulated time of the last successful queue admission (stamped
    #: by :meth:`BoundedQueue.offer`); shed records derive their
    #: queue-wait time from it
    queued_at: "float | None" = None
    finish_s: "float | None" = None
    #: why the job ended where it did ("backpressure", "breaker-open",
    #: "retries-exhausted", "deadline", ...)
    reason: "str | None" = None
    #: BudgetExceeded payload for REJECTED jobs
    error: "dict | None" = None
    #: DONE payload: AlgoResult (solve/query) or UpdateReport (update)
    result: Any = None
    #: per-attempt trace/profile artifacts (solve jobs)
    attempts_detail: "list[dict]" = field(default_factory=list)
    decisions: "list[dict]" = field(default_factory=list)

    def record(self, now: float, decision: str, **detail: Any) -> None:
        """Append one timestamped control-plane decision."""
        self.decisions.append({"t": float(now), "decision": decision, **detail})

    def finish(self, now: float, state: JobState, reason: "str | None" = None) -> None:
        if self.state in TERMINAL_STATES:
            raise RuntimeError(
                f"job {self.id} already terminal ({self.state}); cannot"
                f" move to {state}"
            )
        self.state = state
        self.finish_s = float(now)
        self.reason = reason
        self.record(now, str(state), reason=reason)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency_s(self) -> "float | None":
        """Submit-to-terminal latency (None while in flight)."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.submit_s

    def deadline_at(self, default_s: "float | None") -> "float | None":
        """Absolute deadline, resolving the service default."""
        rel = self.spec.deadline_s if self.spec.deadline_s is not None else default_s
        return None if rel is None else self.submit_s + rel

    # ------------------------------------------------------------------
    def artifact(self) -> "dict[str, Any]":
        """The replayable per-job record (JSON-safe).

        Everything needed to audit the job after the fact: the spec,
        the full decision history, per-attempt execution details
        (service seconds, crash/delay draws, trace/profile summaries
        for solve attempts), and the terminal state.
        """
        return {
            "id": self.id,
            "tenant": self.spec.tenant,
            "kind": str(self.spec.kind),
            "graph": self.spec.graph,
            "workload": self.spec.workload,
            "submit_s": self.submit_s,
            "finish_s": self.finish_s,
            "latency_s": self.latency_s,
            "state": str(self.state),
            "reason": self.reason,
            "error": self.error,
            "attempts": self.attempts,
            "attempts_detail": list(self.attempts_detail),
            "decisions": list(self.decisions),
        }
