"""Service metrics: decision counters and a Prometheus exposition.

Every control-plane decision increments a named counter here *and* a
``serve:*`` trace counter when the service has a tracer attached — the
two views are the same numbers at different granularities (aggregate
vs. per-decision-with-timestamp).  :func:`to_prometheus` renders the
aggregate view in the text exposition format, mirroring
``repro.profile.to_prometheus`` (see ``docs/observability.md`` §9).
"""

from __future__ import annotations

from collections import Counter

__all__ = ["ServiceMetrics", "to_prometheus", "COUNTER_HELP", "GAUGE_HELP"]

#: every counter the service emits, with its exposition HELP text.
COUNTER_HELP = {
    "submitted": "jobs submitted",
    "rejected_budget": "jobs rejected at admission: tenant over budget",
    "shed_backpressure": "jobs shed: bounded run queue full",
    "shed_breaker": "jobs shed: workload circuit breaker open",
    "admitted": "jobs admitted to the run queue",
    "dispatched": "execution attempts dispatched to workers",
    "completed": "jobs completed successfully",
    "crashed": "execution attempts killed by injected worker crashes",
    "delayed": "completions stretched by injected message delays",
    "retries": "retry attempts scheduled (bounded, backoff)",
    "dead_letter": "jobs moved to the dead-letter lane",
    "deadline_expired": "jobs dead-lettered by their deadline",
    "breaker_opened": "circuit-breaker open transitions",
    "breaker_reopened": "failed half-open probes (breaker re-opened)",
    "breaker_closed": "successful half-open probes (breaker closed)",
    "cache_hits": "read jobs completed from the solve cache (zero device cost)",
    "cache_misses": "read executions that found no cache entry",
    "cache_evictions": "solve-cache entries evicted by the LRU byte budget",
    "cache_invalidations": "solve-cache entries dropped by a generation advance",
    "coalesced_reads": "solve/query jobs completed from a coalesced leader's result",
    "coalesced_updates": "update jobs merged into another update's single apply",
    "coalesce_requeued": "coalesced followers returned to the queue by a leader crash",
}

#: every gauge the service emits, with its exposition HELP text —
#: mirrors :data:`COUNTER_HELP`; unknown names fall back to a generic
#: ``service gauge <name>`` line rather than being dropped.
GAUGE_HELP = {
    "queue_peak_depth": "deepest the bounded run queue got during the run",
    "makespan_s": "simulated seconds from first arrival to last terminal job",
    "shed_wait_s_total": "queue seconds wasted by jobs that were later shed",
    "cache_bytes": "bytes resident in the solve cache at end of run",
    "cache_entries": "entries resident in the solve cache at end of run",
}


class ServiceMetrics:
    """Aggregate decision counters plus a few service-level gauges."""

    def __init__(self) -> None:
        self.counters: "Counter[str]" = Counter()
        self.gauges: "dict[str, float]" = {}

    def incr(self, name: str, value: int = 1) -> None:
        self.counters[name] += value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    def as_dict(self) -> "dict[str, object]":
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def to_prometheus(
    metrics: ServiceMetrics, *, prefix: str = "repro_serve"
) -> str:
    """Text exposition of the service counters and gauges.

    Counter names become ``<prefix>_<name>_total``; gauges keep their
    name.  Unknown counters (callers may add their own) get a generic
    HELP line rather than being dropped.
    """
    lines: "list[str]" = []
    for name in sorted(metrics.counters):
        metric = f"{prefix}_{name}_total"
        help_text = COUNTER_HELP.get(name, f"service counter {name}")
        lines.append(f"# HELP {metric} {_escape(help_text)}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {metrics.counters[name]}")
    for name in sorted(metrics.gauges):
        metric = f"{prefix}_{name}"
        help_text = GAUGE_HELP.get(name, f"service gauge {name}")
        lines.append(f"# HELP {metric} {_escape(help_text)}")
        lines.append(f"# TYPE {metric} gauge")
        value = metrics.gauges[name]
        lines.append(f"{metric} {value:.9g}")
    return "\n".join(lines) + "\n"
