"""The control plane: :class:`SccService`.

A deterministic, simulated-time request layer over the repro data
plane.  Tenants submit :class:`~repro.serve.jobs.JobSpec`s against
named persistent graphs; the service

1. **admits** through per-tenant budget checks
   (:mod:`repro.serve.budget` — hard limits, structured
   ``BudgetExceeded`` rejections) and a bounded run queue
   (:mod:`repro.serve.queues` — explicit shed policy, never silent
   growth),
2. **short-circuits redundant work** between admission and dispatch:
   a generation-keyed :class:`~repro.serve.cache.SolveCache` completes
   repeat ``SOLVE``/``QUERY`` jobs from memoized labels at zero device
   cost, queued reads against the same ``(graph, generation)`` as an
   in-flight read **coalesce** onto that leader and complete from its
   single result, and consecutive small ``UPDATE`` batches against one
   graph **merge** into a single incremental
   :meth:`~repro.dynamic.DynamicGraph.apply` (the one execution's
   charges split evenly across the coalition — the share rule in
   ``docs/serve.md`` §6),
3. **schedules** across a WIP-limited pool of
   :class:`~repro.device.VirtualDevice` workers
   (:mod:`repro.serve.workers`), serializing update/query jobs per
   graph handle,
4. **survives failure**: per-job deadlines, FaultPlan-injected worker
   crashes and completion delays, bounded retry with the
   :func:`repro.faults.backoff_seconds` exponential backoff (plan-
   seeded jitter de-synchronizes concurrent retries), a dead-letter
   lane for jobs that exhaust retries or blow their deadline, and
   per-workload circuit breakers (:mod:`repro.serve.breaker`) that
   fast-fail doomed workloads instead of letting their retries starve
   healthy tenants.

**Simulated time.** There is no wall clock anywhere: the service is a
discrete-event loop over a heap of ``(time, seq, event)`` entries, and
every random decision (crash, delay, backoff jitter) is drawn from one
plan-seeded generator — the same plan and the same submissions replay
the same schedule, decision for decision.  Job execution is host-side
*at dispatch*: the data-plane call runs immediately (so its labels and
counters are exact), its modelled cost becomes the service interval,
and the completion event fires after that interval on the simulated
clock.

**Crash safety.** A crashed ``UPDATE`` attempt must not leave partial
state: the handle is checkpointed before the attempt and rolled back
(:meth:`~repro.dynamic.DynamicGraph.restore`) on a crash, so a retry
recomputes from exactly the pre-attempt graph, and committed
generations advance once per *successful* attempt.  Crashed attempts
still charge their tenant for the wasted work.

Every decision lands three ways: the job's own decision history
(:meth:`~repro.serve.jobs.Job.artifact`), the aggregate
:class:`~repro.serve.metrics.ServiceMetrics` counters, and ``serve:*``
trace counters when a tracer is attached.  See ``docs/serve.md``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.options import EclOptions
from ..device.spec import A100, DeviceSpec
from ..dynamic.graph import DynamicGraph
from ..errors import GraphFormatError
from ..faults.plan import FaultPlan
from ..faults.recovery import backoff_seconds
from ..graph.csr import CSRGraph
from ..profile.report import profile_run
from ..results import AlgoResult
from ..trace import Tracer, ensure_tracer
from .breaker import CircuitBreaker
from .budget import Budget, BudgetLedger
from .cache import DEFAULT_CACHE_BYTES, CacheEntry, SolveCache
from .jobs import Job, JobKind, JobSpec, JobState
from .metrics import ServiceMetrics
from .queues import BoundedQueue, ShedPolicy
from .workers import WorkerPool

__all__ = ["SccService", "ServiceReport"]

#: fallback breaker cooldown when the plan gives no backoff basis.
_DEFAULT_COOLDOWN_S = 0.002


def _edge_pairs(batch) -> "set[tuple[int, int]]":
    """The ``(src, dst)`` pair set of one update batch (empty for None)."""
    if batch is None:
        return set()
    src, dst = batch
    return {(int(s), int(d)) for s, d in zip(src, dst)}


def _merge_batches(batches) -> "tuple[list, list] | None":
    """Concatenate ``(src, dst)`` batches in order; None if all are None.

    The merged-update fast path: constituent batches become one
    combined batch per phase, so a merged ``apply`` runs exactly one
    delete pass and one insert pass.
    """
    src: "list" = []
    dst: "list" = []
    any_batch = False
    for batch in batches:
        if batch is None:
            continue
        any_batch = True
        s, d = batch
        src.extend(s)
        dst.extend(d)
    return (src, dst) if any_batch else None


@dataclass
class ServiceReport:
    """Everything one service run decided and measured."""

    jobs: "list[Job]"
    metrics: ServiceMetrics
    makespan_s: float
    breakers: "list[dict]" = field(default_factory=list)
    workers: "dict | None" = None
    budgets: "dict | None" = None
    queue_peak_depth: int = 0
    #: :meth:`SolveCache.as_dict` snapshot (None when caching is off)
    cache: "dict | None" = None

    def by_state(self) -> "dict[str, int]":
        counts: "dict[str, int]" = {}
        for job in self.jobs:
            counts[str(job.state)] = counts.get(str(job.state), 0) + 1
        return counts

    def done_latencies(self) -> "list[float]":
        return sorted(
            job.latency_s for job in self.jobs
            if job.state is JobState.DONE
        )

    def artifacts(self) -> "list[dict]":
        """The replayable per-job records, in submission order."""
        return [job.artifact() for job in self.jobs]

    def to_dict(self) -> "dict[str, Any]":
        return {
            "makespan_s": self.makespan_s,
            "by_state": self.by_state(),
            "metrics": self.metrics.as_dict(),
            "queue_peak_depth": self.queue_peak_depth,
            "breakers": list(self.breakers),
            "workers": self.workers,
            "budgets": self.budgets,
            "cache": self.cache,
            "jobs": self.artifacts(),
        }


class SccService:
    """Multi-tenant SCC-as-a-service over named persistent graphs."""

    def __init__(
        self,
        *,
        workers: int = 2,
        wip_limit: "int | None" = None,
        queue_capacity: int = 16,
        shed_policy: ShedPolicy = ShedPolicy.REJECT_NEW,
        device: "DeviceSpec | None" = None,
        engine: "str | None" = None,
        backend: "str | None" = None,
        options: "EclOptions | None" = None,
        faults: "FaultPlan | None" = None,
        breakers_enabled: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown_s: "float | None" = None,
        cache_enabled: bool = True,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        coalesce_enabled: bool = True,
        merge_updates: int = 4,
        default_deadline_s: "float | None" = None,
        default_budget: "Budget | None" = None,
        tracer: "Tracer | None" = None,
        observer: Any = None,
        seed: int = 0,
    ) -> None:
        self.spec = device or A100
        self.engine = engine
        self.backend = backend
        self.options = options
        self.plan = faults
        # one service RNG drives every stochastic decision (crashes,
        # delays, backoff jitter); plan-seeded so chaos runs replay
        self._rng = faults.rng() if faults is not None else np.random.default_rng(seed)
        self.pool = WorkerPool(workers, spec=self.spec, wip_limit=wip_limit)
        self.queue = BoundedQueue(queue_capacity, policy=shed_policy)
        self.ledger = BudgetLedger(default=default_budget)
        self.breakers_enabled = bool(breakers_enabled)
        self.breaker_threshold = int(breaker_threshold)
        if breaker_cooldown_s is None:
            # default cooldown: the worst-case retry wait of one job, so
            # an open breaker outlives the retries that opened it
            if faults is not None:
                breaker_cooldown_s = backoff_seconds(faults, faults.max_retries)
            else:
                breaker_cooldown_s = _DEFAULT_COOLDOWN_S
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.cache = SolveCache(max_bytes=cache_bytes) if cache_enabled else None
        self.coalesce_enabled = bool(coalesce_enabled)
        if merge_updates < 1:
            raise ValueError(f"merge_updates must be >= 1, got {merge_updates}")
        self.merge_updates = int(merge_updates)
        self.default_deadline_s = default_deadline_s
        self.metrics = ServiceMetrics()
        #: duck-typed observability hook (e.g. ``repro.obs.ObsRecorder``):
        #: any object with ``on_event(service)`` — called after every
        #: simulated event the run loop processes.  Kept duck-typed so
        #: this package never imports ``repro.obs``.
        self.observer = observer
        self._tr = ensure_tracer(tracer)
        self._graphs: "dict[str, DynamicGraph]" = {}
        self._breakers: "dict[str, CircuitBreaker]" = {}
        self._busy_graphs: "set[str]" = set()
        #: leader job id -> coalesced followers completing from its result
        self._followers: "dict[int, list[Job]]" = {}
        #: graph name -> (in-flight read leader, generation it
        #: observed, simulated time its completion event fires)
        self._inflight_reads: "dict[str, tuple[Job, int, float]]" = {}
        self._shed_wait_s = 0.0
        self.jobs: "list[Job]" = []
        self.now = 0.0
        self._heap: "list[tuple[float, int, str, Any]]" = []
        self._seq = 0
        self._job_seq = 0
        self._ran = False

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register_graph(
        self,
        name: str,
        graph: CSRGraph,
        *,
        labels: "np.ndarray | None" = None,
    ) -> DynamicGraph:
        """Create the named persistent :class:`DynamicGraph` handle.

        Registration's cold solve is service-owned (charged to the
        handle's device, not to any tenant).
        """
        if name in self._graphs:
            raise GraphFormatError(f"graph {name!r} is already registered")
        handle = DynamicGraph(
            graph,
            options=self.options,
            engine=self.engine,
            backend=self.backend,
            device=self.spec,
            labels=labels,
        )
        self._graphs[name] = handle
        return handle

    def graph_handle(self, name: str) -> DynamicGraph:
        try:
            return self._graphs[name]
        except KeyError:
            raise GraphFormatError(
                f"unknown graph {name!r}; registered: {sorted(self._graphs)}"
            ) from None

    def set_budget(self, tenant: str, budget: Budget) -> None:
        self.ledger.set_budget(tenant, budget)

    def breaker_for(self, workload: str) -> CircuitBreaker:
        br = self._breakers.get(workload)
        if br is None:
            br = CircuitBreaker(
                workload,
                failure_threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s,
            )
            self._breakers[workload] = br
        return br

    # ------------------------------------------------------------------
    # submission + event loop
    # ------------------------------------------------------------------
    def _schedule(self, at: float, kind: str, payload: Any) -> None:
        heapq.heappush(self._heap, (float(at), self._seq, kind, payload))
        self._seq += 1

    def submit(self, spec: JobSpec, *, at: float = 0.0) -> Job:
        """Enqueue one job arrival at simulated time *at*."""
        if spec.graph not in self._graphs:
            raise GraphFormatError(
                f"unknown graph {spec.graph!r}; registered:"
                f" {sorted(self._graphs)}"
            )
        if at < 0:
            raise ValueError(f"arrival time must be >= 0, got {at}")
        job = Job(id=self._job_seq, spec=spec, submit_s=float(at))
        self._job_seq += 1
        self.jobs.append(job)
        self._schedule(at, "arrival", job)
        return job

    def run(self) -> ServiceReport:
        """Drain every event; returns when all jobs are terminal."""
        while self._heap:
            at, _, kind, payload = heapq.heappop(self._heap)
            self.now = max(self.now, at)
            if kind == "arrival":
                self._on_arrival(payload)
            elif kind == "retry":
                self._on_retry(payload)
            elif kind == "complete":
                self._on_complete(*payload)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
            if self.observer is not None:
                self.observer.on_event(self)
        self._ran = True
        self.metrics.gauge("queue_peak_depth", self.queue.peak_depth)
        self.metrics.gauge("makespan_s", self.now)
        self.metrics.gauge("shed_wait_s_total", self._shed_wait_s)
        if self.cache is not None:
            self.metrics.gauge("cache_bytes", self.cache.bytes)
            self.metrics.gauge("cache_entries", len(self.cache))
        return self.report()

    def report(self) -> ServiceReport:
        return ServiceReport(
            jobs=list(self.jobs),
            metrics=self.metrics,
            makespan_s=self.now,
            breakers=[b.as_dict() for b in self._breakers.values()],
            workers=self.pool.as_dict(),
            budgets=self.ledger.snapshot(),
            queue_peak_depth=self.queue.peak_depth,
            cache=self.cache.as_dict() if self.cache is not None else None,
        )

    # ------------------------------------------------------------------
    # decision recording
    # ------------------------------------------------------------------
    def _decide(self, job: Job, decision: str, **detail: Any) -> None:
        job.record(self.now, decision, **detail)
        self._tr.counter(f"serve:{decision}", job=job.id, **detail)

    def _shed(self, job: Job, reason: str) -> None:
        counter = (
            "shed_breaker" if reason == "breaker-open" else "shed_backpressure"
        )
        self.metrics.incr(counter)
        # the victim's queue-wait rides its SHED record — shed work is
        # work the service made wait and then threw away
        waited_s = (
            max(self.now - job.queued_at, 0.0)
            if job.queued_at is not None else 0.0
        )
        self._shed_wait_s += waited_s
        self._decide(job, "shed", reason=reason, waited_s=waited_s)
        job.finish(self.now, JobState.SHED, reason)

    def _dead_letter(self, job: Job, reason: str) -> None:
        self.metrics.incr("dead_letter")
        if reason == "deadline":
            self.metrics.incr("deadline_expired")
        self._decide(job, "dead-letter", reason=reason)
        job.finish(self.now, JobState.DEAD_LETTER, reason)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, job: Job) -> None:
        self.metrics.incr("submitted")
        self._decide(job, "submit", tenant=job.spec.tenant,
                     kind=str(job.spec.kind), graph=job.spec.graph)
        self._admit(job)

    def _admit(self, job: Job) -> None:
        """Budget gate, then the bounded queue (breakers gate dispatch)."""
        exceeded = self.ledger.check(job.spec.tenant)
        if exceeded is not None:
            self.metrics.incr("rejected_budget")
            job.error = exceeded.as_dict()
            self._decide(job, "reject-budget", resource=exceeded.resource,
                         limit=exceeded.limit, spent=exceeded.spent)
            job.finish(self.now, JobState.REJECTED, "budget")
            return
        victim = self.queue.offer(
            job, now=self.now, busy_graphs=self._busy_graphs
        )
        if victim is not None:
            self._shed(victim, "backpressure")
            if victim is job:
                return
        job.state = JobState.QUEUED
        self.metrics.incr("admitted")
        self._decide(job, "admit", depth=len(self.queue))
        self._dispatch()

    def _on_retry(self, job: Job) -> None:
        """A backoff wait elapsed: re-admit through the same gates."""
        self._decide(job, "retry", attempt=job.attempts)
        self._admit(job)

    def _dispatch(self) -> None:
        """Drain the queue: serve reads worker-free, then dispatch.

        Each pass first **sweeps** the queue for reads that need no
        worker — cache hits at the current generation and reads that
        coalesce onto an in-flight leader — then moves one eligible
        job onto an idle worker.  Dispatching a read leader makes new
        coalesce attaches possible, so the loop re-sweeps after every
        dispatch and exits only when neither path makes progress.
        """
        while True:
            self._sweep_reads()
            if not self.pool.has_capacity:
                return
            job = self.queue.pop_eligible(self._busy_graphs)
            if job is None:
                return
            deadline = job.deadline_at(self.default_deadline_s)
            if deadline is not None and self.now >= deadline:
                # >= : a job at exactly its deadline is expired — the
                # same boundary the retry path uses (no dispatch/retry
                # disagreement at t == deadline)
                self._dead_letter(job, "deadline")
                continue
            if self.breakers_enabled:
                breaker = self.breaker_for(job.spec.workload)
                if not breaker.allow(self.now):
                    self._shed(job, "breaker-open")
                    continue
            merge_followers: "list[Job]" = []
            if (
                self.coalesce_enabled
                and job.spec.kind is JobKind.UPDATE
                and self.merge_updates > 1
            ):
                merge_followers = self._collect_update_merge(job)
            worker = self.pool.acquire()
            assert worker is not None  # has_capacity guaranteed a slot
            self._execute(job, worker, merge_followers)

    # ------------------------------------------------------------------
    # the fast paths: cache hits, read coalescing, update merging
    # ------------------------------------------------------------------
    def _sweep_reads(self) -> int:
        """Complete queued reads that need no worker; returns the count.

        A queued ``SOLVE``/``QUERY`` is served worker-free when either
        (a) an in-flight read leader on the same graph observed the
        same generation — the job attaches to it and will complete
        from the leader's single result at the leader's completion
        time — or (b) the solve cache holds an entry for
        ``(graph, generation, engine, backend)`` — the job completes
        immediately at zero device cost.  ``QUERY`` jobs keep their
        per-graph serialization: a graph made busy by an *update*
        blocks its queries here exactly as it does at dispatch (the
        generation check makes leader-attach safe: a busy read leader
        matches, a busy update never does).
        """
        if self.cache is None and not self.coalesce_enabled:
            return 0
        # per-graph program order: a QUERY never overtakes an UPDATE
        # queued ahead of it on the same graph (SOLVE reads committed
        # snapshots and may overtake, exactly as at dispatch)
        update_blocked: "set[str]" = set()

        def fastpath(job: Job) -> bool:
            kind, graph = job.spec.kind, job.spec.graph
            if kind is JobKind.UPDATE:
                update_blocked.add(graph)
                return False
            if kind is JobKind.QUERY and graph in update_blocked:
                return False
            generation = self._graphs[graph].generation
            if self.coalesce_enabled:
                inflight = self._inflight_reads.get(graph)
                if inflight is not None and inflight[1] == generation:
                    leader, _, leader_done_at = inflight
                    deadline = job.deadline_at(self.default_deadline_s)
                    if deadline is None or leader_done_at < deadline:
                        job._fastpath = ("attach", leader)
                        return True
                    # the leader completes at or past this job's
                    # deadline: attaching would knowingly serve a dead
                    # result — stay queued; the dispatch deadline
                    # check rules on it (and the cache below may still
                    # serve it instantly)
            if kind is JobKind.QUERY and graph in self._busy_graphs:
                return False  # an in-flight update: queries stay ordered
            if self.cache is not None:
                entry = self.cache.get(
                    self.cache.key(graph, generation, self.engine, self.backend)
                )
                if entry is not None:
                    job._fastpath = ("cache", entry)
                    return True
            return False

        served = 0
        for job in self.queue.extract(fastpath):
            deadline = job.deadline_at(self.default_deadline_s)
            if deadline is not None and self.now >= deadline:
                self._dead_letter(job, "deadline")
                continue
            plan, leader_or_entry = job._fastpath  # set by the predicate
            del job._fastpath
            if plan == "attach":
                self._attach_follower(leader_or_entry, job)
            else:
                self._serve_cache_hit(job, leader_or_entry)
            served += 1
        return served

    def _serve_cache_hit(self, job: Job, entry: CacheEntry) -> None:
        """Complete *job* from the cache: zero device cost, no worker."""
        self.metrics.incr("cache_hits")
        self._decide(job, "cache_hit", graph=job.spec.graph,
                     generation=entry.generation)
        job.attempts_detail.append({
            "cache_hit": True,
            "t_complete": self.now,
            "generation": entry.generation,
            "service_s": 0.0,
        })
        job.result = AlgoResult(
            labels=entry.labels.copy(), num_sccs=entry.num_sccs
        )
        self.metrics.incr("completed")
        self._decide(job, "complete", attempt=job.attempts, service_s=0.0)
        job.finish(self.now, JobState.DONE)

    def _attach_follower(self, leader: Job, job: Job) -> None:
        """Coalesce *job* onto the in-flight read *leader*."""
        self.metrics.incr("coalesced_reads")
        self._decide(job, "coalesce_attach", leader=leader.id)
        job.state = JobState.RUNNING
        self._followers[leader.id].append(job)

    def _collect_update_merge(self, leader: Job) -> "list[Job]":
        """Pull queued updates that merge into *leader*'s single apply.

        Merge partners are taken in queue order, same graph only, and
        the scan **stops at the first same-graph job that cannot
        merge** (a query, a solve, an over-cap update, or one whose
        deletions overlap the batch's pending insertions) so per-graph
        ordering is never reordered around an incompatible job.  The
        overlap rule keeps merged semantics exact: ``apply`` deletes
        before it inserts, so a constituent may not delete an edge an
        earlier constituent inserts.
        """
        graph = leader.spec.graph
        pending_inserts = _edge_pairs(leader.spec.insert_edges)
        taken = [leader]
        stopped = False

        def mergeable(job: Job) -> bool:
            nonlocal stopped
            if stopped or job.spec.graph != graph:
                return False
            if job.spec.kind is not JobKind.UPDATE or len(taken) >= self.merge_updates:
                stopped = True
                return False
            deadline = job.deadline_at(self.default_deadline_s)
            if deadline is not None and self.now >= deadline:
                # already expired: never commit its batch — it stays
                # queued and dead-letters at its own dispatch
                return False
            deletes = _edge_pairs(job.spec.delete_edges)
            if deletes & pending_inserts:
                stopped = True
                return False
            pending_inserts.update(_edge_pairs(job.spec.insert_edges))
            taken.append(job)
            return True

        followers = self.queue.extract(mergeable)
        for i, job in enumerate(followers, start=1):
            self.metrics.incr("coalesced_updates")
            self._decide(job, "coalesce_merge", leader=leader.id,
                         merge_index=i)
            job.state = JobState.RUNNING
        return followers

    # ------------------------------------------------------------------
    # execution (host-side at dispatch; completion on the simulated clock)
    # ------------------------------------------------------------------
    def _execute(
        self, job: Job, worker, merge_followers: "list[Job] | None" = None
    ) -> None:
        job.state = JobState.RUNNING
        job.attempts += 1
        self.metrics.incr("dispatched")
        self._decide(job, "dispatch", worker=worker.id, attempt=job.attempts)
        kind = job.spec.kind
        merge_followers = merge_followers or []
        self._followers[job.id] = merge_followers
        if kind in (JobKind.UPDATE, JobKind.QUERY):
            self._busy_graphs.add(job.spec.graph)
        try:
            payload, service_s, charges = self._run_attempt(job, merge_followers)
        except Exception:
            self._busy_graphs.discard(job.spec.graph)
            self._followers.pop(job.id, None)
            self.pool.release(worker)
            raise
        # seeded fault draws: a crash truncates the attempt mid-service
        # (partial work still charged); a delay stretches the completion
        crashed = False
        delay_s = 0.0
        if self.plan is not None and self.plan.worker_crash_rate > 0:
            if float(self._rng.random()) < self.plan.worker_crash_rate:
                crashed = True
                frac = 0.1 + 0.8 * float(self._rng.random())
                service_s *= frac
                charges = {k: v * frac for k, v in charges.items()}
        if (
            not crashed
            and self.plan is not None
            and self.plan.message_delay_rate > 0
        ):
            if float(self._rng.random()) < self.plan.message_delay_rate:
                delay_s = service_s * (0.5 + 1.5 * float(self._rng.random()))
                self.metrics.incr("delayed")
        if crashed and kind is JobKind.UPDATE:
            # roll the handle back: a crashed update commits nothing —
            # merged constituents included, the checkpoint predates the
            # whole merged apply
            handle, ckpt = payload["handle"], payload["checkpoint"]
            handle.restore(ckpt)
            payload = None
        done_at = self.now + service_s + delay_s
        if not crashed:
            if kind in (JobKind.SOLVE, JobKind.QUERY) and self.coalesce_enabled:
                # later-queued reads at this generation may attach
                # until the completion event fires at done_at (the
                # sweep rejects attaches whose deadline lands earlier)
                self._inflight_reads[job.spec.graph] = (
                    job, payload["generation"], done_at
                )
            elif kind is JobKind.UPDATE and self.cache is not None:
                # the commit happened host-side just now: entries from
                # older generations never survive the advance
                handle = self._graphs[job.spec.graph]
                dropped = self.cache.invalidate(
                    job.spec.graph, handle.generation
                )
                if dropped:
                    self.metrics.incr("cache_invalidations", dropped)
                    self._tr.counter("serve:cache_invalidation",
                                     graph=job.spec.graph, dropped=dropped)
        job.attempts_detail.append({
            "attempt": job.attempts,
            "t_dispatch": self.now,
            "worker": worker.id,
            "service_s": service_s,
            "delay_s": delay_s,
            "crashed": crashed,
            "charges": dict(charges),
            **({"merged": len(merge_followers)} if merge_followers else {}),
            **({"generation": payload["generation"], "merge_index": 0}
               if payload and kind is JobKind.UPDATE and merge_followers
               else {}),
            **({"generation": payload["generation"]}
               if payload and not (kind is JobKind.UPDATE and merge_followers)
               else {}),
        })
        self._schedule(
            done_at, "complete",
            (job, worker, payload, charges, crashed, self.now),
        )

    def _run_attempt(self, job: Job, merge_followers: "list[Job]"):
        """Execute the data-plane call; returns (payload, seconds, charges).

        *merge_followers* are the coalesced update constituents riding
        *job*'s single :meth:`~repro.dynamic.DynamicGraph.apply` (empty
        for reads and unmerged updates).
        """
        kind = job.spec.kind
        handle = self._graphs[job.spec.graph]
        if kind is not JobKind.UPDATE and self.cache is not None:
            # the dispatch sweep already proved there is no usable
            # entry: one miss per actual read execution, not per probe
            self.cache.count_miss()
            self.metrics.incr("cache_misses")
        if kind is JobKind.SOLVE:
            from ..bench.runners import run_algorithm

            tracer = Tracer()
            snapshot = handle.graph()
            result = run_algorithm(
                snapshot, "ecl-scc", self.spec,
                options=self.options, backend=self.backend,
                engine=self.engine, tracer=tracer,
            )
            service_s = float(result.model_seconds)
            counters = result.counters
            charges = {
                "model_seconds": service_s,
                "bytes": float(
                    counters.get("bytes_moved", 0)
                    + counters.get("bytes_streamed", 0)
                ),
            }
            payload = {
                "result": result,
                "generation": handle.generation,
                "profile": profile_run(result).to_dict(),
            }
            return payload, service_s, charges

        seconds_before = handle.model_seconds()
        bytes_before = (
            handle.device.counters.bytes_moved
            + handle.device.counters.bytes_streamed
        )
        if kind is JobKind.UPDATE:
            ckpt = handle.checkpoint()
            specs = [job.spec] + [f.spec for f in merge_followers]
            reports = handle.apply(
                deletions=_merge_batches(s.delete_edges for s in specs),
                insertions=_merge_batches(s.insert_edges for s in specs),
            )
            payload = {
                "reports": reports,
                "handle": handle,
                "checkpoint": ckpt,
                "generation": handle.generation,
            }
        else:  # QUERY
            result = handle.query()
            payload = {"result": result, "generation": handle.generation}
        service_s = max(handle.model_seconds() - seconds_before, 0.0)
        bytes_delta = (
            handle.device.counters.bytes_moved
            + handle.device.counters.bytes_streamed
            - bytes_before
        )
        charges = {
            "model_seconds": service_s,
            "bytes": float(max(bytes_delta, 0)),
        }
        return payload, service_s, charges

    def _on_complete(
        self, job: Job, worker, payload, charges, crashed: bool,
        dispatched_at: float,
    ) -> None:
        self.pool.release(worker, busy_s=self.now - dispatched_at)
        self._busy_graphs.discard(job.spec.graph)
        followers = self._followers.pop(job.id, [])
        if self._inflight_reads.get(job.spec.graph, (None,))[0] is job:
            # identity-guarded: a newer read leader at an advanced
            # generation may already have overwritten the slot
            del self._inflight_reads[job.spec.graph]
        kind = job.spec.kind
        breaker = (
            self.breaker_for(job.spec.workload)
            if self.breakers_enabled else None
        )
        if not crashed:
            # the share rule (docs/serve.md §6): the one execution's
            # charges split evenly across the coalition; a lone job is
            # charged whole
            share = 1.0 / (1 + len(followers))
            for member in (job, *followers):
                self.ledger.charge(
                    member.spec.tenant,
                    model_seconds=charges["model_seconds"] * share,
                    bytes=charges["bytes"] * share,
                )
            worker.jobs_done += 1
            if breaker is not None:
                was_open = breaker.state.value != "closed"
                breaker.record_success(self.now)
                if was_open:
                    self.metrics.incr("breaker_closed")
                    self._tr.counter("serve:breaker-closed",
                                     workload=breaker.workload)
            self.metrics.incr("completed")
            if kind is JobKind.UPDATE:
                job.result = payload["reports"]
            else:
                job.result = payload["result"]
            self._decide(job, "complete", attempt=job.attempts,
                         service_s=charges["model_seconds"],
                         **({"coalesced": len(followers)} if followers else {}))
            job.finish(self.now, JobState.DONE)
            for i, follower in enumerate(followers, start=1):
                self._complete_follower(job, follower, payload, charges,
                                        share, i)
            if self.cache is not None and kind is not JobKind.UPDATE:
                self._cache_put(job, payload)
            self._dispatch()
            return
        # crashed attempt: the leader's tenant owns the whole
        # partial-work charge; followers ride back to the queue head
        # for free (nothing of theirs executed — the rollback restored
        # the pre-attempt graph)
        self.ledger.charge(
            job.spec.tenant,
            model_seconds=charges["model_seconds"],
            bytes=charges["bytes"],
        )
        if followers:
            for follower in followers:
                follower.state = JobState.QUEUED
                self.metrics.incr("coalesce_requeued")
                self._decide(follower, "coalesce_requeue", leader=job.id)
            self.queue.requeue(followers)
        worker.crashes += 1
        self.metrics.incr("crashed")
        self._decide(job, "crash", attempt=job.attempts, worker=worker.id)
        if breaker is not None:
            before = breaker.state.value
            if breaker.record_failure(self.now):
                self.metrics.incr(
                    "breaker_reopened" if before == "half-open"
                    else "breaker_opened"
                )
                self._tr.counter("serve:breaker-opened",
                                 workload=breaker.workload)
        retries_so_far = job.attempts - 1
        max_retries = self.plan.max_retries if self.plan is not None else 0
        if retries_so_far >= max_retries:
            self._dead_letter(job, "retries-exhausted")
            self._dispatch()
            return
        wait_s = backoff_seconds(self.plan, retries_so_far, rng=self._rng)
        retry_at = self.now + wait_s
        deadline = job.deadline_at(self.default_deadline_s)
        if deadline is not None and retry_at >= deadline:
            # >= : the same expiry boundary dispatch uses — a retry
            # landing exactly at the deadline is already too late
            self._dead_letter(job, "deadline")
            self._dispatch()
            return
        job.state = JobState.RETRY_WAIT
        self.metrics.incr("retries")
        self._decide(job, "retry-scheduled", attempt=job.attempts,
                     wait_s=wait_s)
        self._schedule(retry_at, "retry", job)
        self._dispatch()

    def _complete_follower(
        self, leader: Job, job: Job, payload, charges, share: float,
        index: int,
    ) -> None:
        """Finish one coalesced follower from its leader's single result."""
        detail = {
            "coalesced_with": leader.id,
            "t_complete": self.now,
            "generation": payload["generation"],
            "service_s": 0.0,
            "charges": {k: v * share for k, v in charges.items()},
        }
        if job.spec.kind is JobKind.UPDATE:
            detail["merge_index"] = index
            job.result = list(payload["reports"])
        else:
            result = payload["result"]
            job.result = AlgoResult(
                labels=result.labels.copy(), num_sccs=result.num_sccs
            )
        job.attempts_detail.append(detail)
        self.metrics.incr("completed")
        self._decide(job, "complete", leader=leader.id, service_s=0.0)
        job.finish(self.now, JobState.DONE)

    def _cache_put(self, job: Job, payload) -> None:
        """Memoize a completed read (skipped if the generation moved on)."""
        graph = job.spec.graph
        generation = payload["generation"]
        if self._graphs[graph].generation != generation:
            # a concurrent update committed mid-flight (SOLVE reads a
            # snapshot, so this can happen): nothing current to cache
            self.cache.stats.stale_puts += 1
            return
        result = payload["result"]
        entry = CacheEntry(
            labels=result.labels.copy(),
            num_sccs=int(result.num_sccs),
            generation=generation,
            profile=payload.get("profile"),
        )
        evicted = self.cache.put(
            self.cache.key(graph, generation, self.engine, self.backend),
            entry,
        )
        if evicted:
            self.metrics.incr("cache_evictions", len(evicted))
            self._tr.counter("serve:cache_eviction", count=len(evicted))
        self._tr.counter("serve:cache_put", graph=graph,
                         generation=generation)

    # ------------------------------------------------------------------
    def to_prometheus(self, *, prefix: str = "repro_serve") -> str:
        """Text exposition of the service metrics (observability.md §9)."""
        from .metrics import to_prometheus

        return to_prometheus(self.metrics, prefix=prefix)
