"""The control plane: :class:`SccService`.

A deterministic, simulated-time request layer over the repro data
plane.  Tenants submit :class:`~repro.serve.jobs.JobSpec`s against
named persistent graphs; the service

1. **admits** through per-tenant budget checks
   (:mod:`repro.serve.budget` — hard limits, structured
   ``BudgetExceeded`` rejections) and a bounded run queue
   (:mod:`repro.serve.queues` — explicit shed policy, never silent
   growth),
2. **schedules** across a WIP-limited pool of
   :class:`~repro.device.VirtualDevice` workers
   (:mod:`repro.serve.workers`), serializing update/query jobs per
   graph handle,
3. **survives failure**: per-job deadlines, FaultPlan-injected worker
   crashes and completion delays, bounded retry with the
   :func:`repro.faults.backoff_seconds` exponential backoff (plan-
   seeded jitter de-synchronizes concurrent retries), a dead-letter
   lane for jobs that exhaust retries or blow their deadline, and
   per-workload circuit breakers (:mod:`repro.serve.breaker`) that
   fast-fail doomed workloads instead of letting their retries starve
   healthy tenants.

**Simulated time.** There is no wall clock anywhere: the service is a
discrete-event loop over a heap of ``(time, seq, event)`` entries, and
every random decision (crash, delay, backoff jitter) is drawn from one
plan-seeded generator — the same plan and the same submissions replay
the same schedule, decision for decision.  Job execution is host-side
*at dispatch*: the data-plane call runs immediately (so its labels and
counters are exact), its modelled cost becomes the service interval,
and the completion event fires after that interval on the simulated
clock.

**Crash safety.** A crashed ``UPDATE`` attempt must not leave partial
state: the handle is checkpointed before the attempt and rolled back
(:meth:`~repro.dynamic.DynamicGraph.restore`) on a crash, so a retry
recomputes from exactly the pre-attempt graph, and committed
generations advance once per *successful* attempt.  Crashed attempts
still charge their tenant for the wasted work.

Every decision lands three ways: the job's own decision history
(:meth:`~repro.serve.jobs.Job.artifact`), the aggregate
:class:`~repro.serve.metrics.ServiceMetrics` counters, and ``serve:*``
trace counters when a tracer is attached.  See ``docs/serve.md``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.options import EclOptions
from ..device.spec import A100, DeviceSpec
from ..dynamic.graph import DynamicGraph
from ..errors import GraphFormatError
from ..faults.plan import FaultPlan
from ..faults.recovery import backoff_seconds
from ..graph.csr import CSRGraph
from ..profile.report import profile_run
from ..trace import Tracer, ensure_tracer
from .breaker import CircuitBreaker
from .budget import Budget, BudgetLedger
from .jobs import Job, JobKind, JobSpec, JobState
from .metrics import ServiceMetrics
from .queues import BoundedQueue, ShedPolicy
from .workers import WorkerPool

__all__ = ["SccService", "ServiceReport"]

#: fallback breaker cooldown when the plan gives no backoff basis.
_DEFAULT_COOLDOWN_S = 0.002


@dataclass
class ServiceReport:
    """Everything one service run decided and measured."""

    jobs: "list[Job]"
    metrics: ServiceMetrics
    makespan_s: float
    breakers: "list[dict]" = field(default_factory=list)
    workers: "dict | None" = None
    budgets: "dict | None" = None
    queue_peak_depth: int = 0

    def by_state(self) -> "dict[str, int]":
        counts: "dict[str, int]" = {}
        for job in self.jobs:
            counts[str(job.state)] = counts.get(str(job.state), 0) + 1
        return counts

    def done_latencies(self) -> "list[float]":
        return sorted(
            job.latency_s for job in self.jobs
            if job.state is JobState.DONE
        )

    def artifacts(self) -> "list[dict]":
        """The replayable per-job records, in submission order."""
        return [job.artifact() for job in self.jobs]

    def to_dict(self) -> "dict[str, Any]":
        return {
            "makespan_s": self.makespan_s,
            "by_state": self.by_state(),
            "metrics": self.metrics.as_dict(),
            "queue_peak_depth": self.queue_peak_depth,
            "breakers": list(self.breakers),
            "workers": self.workers,
            "budgets": self.budgets,
            "jobs": self.artifacts(),
        }


class SccService:
    """Multi-tenant SCC-as-a-service over named persistent graphs."""

    def __init__(
        self,
        *,
        workers: int = 2,
        wip_limit: "int | None" = None,
        queue_capacity: int = 16,
        shed_policy: ShedPolicy = ShedPolicy.REJECT_NEW,
        device: "DeviceSpec | None" = None,
        engine: "str | None" = None,
        backend: "str | None" = None,
        options: "EclOptions | None" = None,
        faults: "FaultPlan | None" = None,
        breakers_enabled: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown_s: "float | None" = None,
        default_deadline_s: "float | None" = None,
        default_budget: "Budget | None" = None,
        tracer: "Tracer | None" = None,
        seed: int = 0,
    ) -> None:
        self.spec = device or A100
        self.engine = engine
        self.backend = backend
        self.options = options
        self.plan = faults
        # one service RNG drives every stochastic decision (crashes,
        # delays, backoff jitter); plan-seeded so chaos runs replay
        self._rng = faults.rng() if faults is not None else np.random.default_rng(seed)
        self.pool = WorkerPool(workers, spec=self.spec, wip_limit=wip_limit)
        self.queue = BoundedQueue(queue_capacity, policy=shed_policy)
        self.ledger = BudgetLedger(default=default_budget)
        self.breakers_enabled = bool(breakers_enabled)
        self.breaker_threshold = int(breaker_threshold)
        if breaker_cooldown_s is None:
            # default cooldown: the worst-case retry wait of one job, so
            # an open breaker outlives the retries that opened it
            if faults is not None:
                breaker_cooldown_s = backoff_seconds(faults, faults.max_retries)
            else:
                breaker_cooldown_s = _DEFAULT_COOLDOWN_S
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.default_deadline_s = default_deadline_s
        self.metrics = ServiceMetrics()
        self._tr = ensure_tracer(tracer)
        self._graphs: "dict[str, DynamicGraph]" = {}
        self._breakers: "dict[str, CircuitBreaker]" = {}
        self._busy_graphs: "set[str]" = set()
        self.jobs: "list[Job]" = []
        self.now = 0.0
        self._heap: "list[tuple[float, int, str, Any]]" = []
        self._seq = 0
        self._job_seq = 0
        self._ran = False

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register_graph(
        self,
        name: str,
        graph: CSRGraph,
        *,
        labels: "np.ndarray | None" = None,
    ) -> DynamicGraph:
        """Create the named persistent :class:`DynamicGraph` handle.

        Registration's cold solve is service-owned (charged to the
        handle's device, not to any tenant).
        """
        if name in self._graphs:
            raise GraphFormatError(f"graph {name!r} is already registered")
        handle = DynamicGraph(
            graph,
            options=self.options,
            engine=self.engine,
            backend=self.backend,
            device=self.spec,
            labels=labels,
        )
        self._graphs[name] = handle
        return handle

    def graph_handle(self, name: str) -> DynamicGraph:
        try:
            return self._graphs[name]
        except KeyError:
            raise GraphFormatError(
                f"unknown graph {name!r}; registered: {sorted(self._graphs)}"
            ) from None

    def set_budget(self, tenant: str, budget: Budget) -> None:
        self.ledger.set_budget(tenant, budget)

    def breaker_for(self, workload: str) -> CircuitBreaker:
        br = self._breakers.get(workload)
        if br is None:
            br = CircuitBreaker(
                workload,
                failure_threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s,
            )
            self._breakers[workload] = br
        return br

    # ------------------------------------------------------------------
    # submission + event loop
    # ------------------------------------------------------------------
    def _schedule(self, at: float, kind: str, payload: Any) -> None:
        heapq.heappush(self._heap, (float(at), self._seq, kind, payload))
        self._seq += 1

    def submit(self, spec: JobSpec, *, at: float = 0.0) -> Job:
        """Enqueue one job arrival at simulated time *at*."""
        if spec.graph not in self._graphs:
            raise GraphFormatError(
                f"unknown graph {spec.graph!r}; registered:"
                f" {sorted(self._graphs)}"
            )
        if at < 0:
            raise ValueError(f"arrival time must be >= 0, got {at}")
        job = Job(id=self._job_seq, spec=spec, submit_s=float(at))
        self._job_seq += 1
        self.jobs.append(job)
        self._schedule(at, "arrival", job)
        return job

    def run(self) -> ServiceReport:
        """Drain every event; returns when all jobs are terminal."""
        while self._heap:
            at, _, kind, payload = heapq.heappop(self._heap)
            self.now = max(self.now, at)
            if kind == "arrival":
                self._on_arrival(payload)
            elif kind == "retry":
                self._on_retry(payload)
            elif kind == "complete":
                self._on_complete(*payload)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        self._ran = True
        self.metrics.gauge("queue_peak_depth", self.queue.peak_depth)
        self.metrics.gauge("makespan_s", self.now)
        return self.report()

    def report(self) -> ServiceReport:
        return ServiceReport(
            jobs=list(self.jobs),
            metrics=self.metrics,
            makespan_s=self.now,
            breakers=[b.as_dict() for b in self._breakers.values()],
            workers=self.pool.as_dict(),
            budgets=self.ledger.snapshot(),
            queue_peak_depth=self.queue.peak_depth,
        )

    # ------------------------------------------------------------------
    # decision recording
    # ------------------------------------------------------------------
    def _decide(self, job: Job, decision: str, **detail: Any) -> None:
        job.record(self.now, decision, **detail)
        self._tr.counter(f"serve:{decision}", job=job.id, **detail)

    def _shed(self, job: Job, reason: str) -> None:
        counter = (
            "shed_breaker" if reason == "breaker-open" else "shed_backpressure"
        )
        self.metrics.incr(counter)
        self._decide(job, "shed", reason=reason)
        job.finish(self.now, JobState.SHED, reason)

    def _dead_letter(self, job: Job, reason: str) -> None:
        self.metrics.incr("dead_letter")
        if reason == "deadline":
            self.metrics.incr("deadline_expired")
        self._decide(job, "dead-letter", reason=reason)
        job.finish(self.now, JobState.DEAD_LETTER, reason)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, job: Job) -> None:
        self.metrics.incr("submitted")
        self._decide(job, "submit", tenant=job.spec.tenant,
                     kind=str(job.spec.kind), graph=job.spec.graph)
        self._admit(job)

    def _admit(self, job: Job) -> None:
        """Budget gate, then the bounded queue (breakers gate dispatch)."""
        exceeded = self.ledger.check(job.spec.tenant)
        if exceeded is not None:
            self.metrics.incr("rejected_budget")
            job.error = exceeded.as_dict()
            self._decide(job, "reject-budget", resource=exceeded.resource,
                         limit=exceeded.limit, spent=exceeded.spent)
            job.finish(self.now, JobState.REJECTED, "budget")
            return
        victim = self.queue.offer(job)
        if victim is not None:
            self._shed(victim, "backpressure")
            if victim is job:
                return
        job.state = JobState.QUEUED
        self.metrics.incr("admitted")
        self._decide(job, "admit", depth=len(self.queue))
        self._dispatch()

    def _on_retry(self, job: Job) -> None:
        """A backoff wait elapsed: re-admit through the same gates."""
        self._decide(job, "retry", attempt=job.attempts)
        self._admit(job)

    def _dispatch(self) -> None:
        """Move eligible queued jobs onto idle workers (WIP-limited)."""
        while self.pool.has_capacity:
            job = self.queue.pop_eligible(self._busy_graphs)
            if job is None:
                return
            deadline = job.deadline_at(self.default_deadline_s)
            if deadline is not None and self.now > deadline:
                self._dead_letter(job, "deadline")
                continue
            if self.breakers_enabled:
                breaker = self.breaker_for(job.spec.workload)
                if not breaker.allow(self.now):
                    self._shed(job, "breaker-open")
                    continue
            worker = self.pool.acquire()
            assert worker is not None  # has_capacity guaranteed a slot
            self._execute(job, worker)

    # ------------------------------------------------------------------
    # execution (host-side at dispatch; completion on the simulated clock)
    # ------------------------------------------------------------------
    def _execute(self, job: Job, worker) -> None:
        job.state = JobState.RUNNING
        job.attempts += 1
        self.metrics.incr("dispatched")
        self._decide(job, "dispatch", worker=worker.id, attempt=job.attempts)
        kind = job.spec.kind
        if kind in (JobKind.UPDATE, JobKind.QUERY):
            self._busy_graphs.add(job.spec.graph)
        try:
            payload, service_s, charges = self._run_attempt(job)
        except Exception:
            self._busy_graphs.discard(job.spec.graph)
            self.pool.release(worker)
            raise
        # seeded fault draws: a crash truncates the attempt mid-service
        # (partial work still charged); a delay stretches the completion
        crashed = False
        delay_s = 0.0
        if self.plan is not None and self.plan.worker_crash_rate > 0:
            if float(self._rng.random()) < self.plan.worker_crash_rate:
                crashed = True
                frac = 0.1 + 0.8 * float(self._rng.random())
                service_s *= frac
                charges = {k: v * frac for k, v in charges.items()}
        if (
            not crashed
            and self.plan is not None
            and self.plan.message_delay_rate > 0
        ):
            if float(self._rng.random()) < self.plan.message_delay_rate:
                delay_s = service_s * (0.5 + 1.5 * float(self._rng.random()))
                self.metrics.incr("delayed")
        if crashed and kind is JobKind.UPDATE:
            # roll the handle back: a crashed update commits nothing
            handle, ckpt = payload["handle"], payload["checkpoint"]
            handle.restore(ckpt)
            payload = None
        job.attempts_detail.append({
            "attempt": job.attempts,
            "t_dispatch": self.now,
            "worker": worker.id,
            "service_s": service_s,
            "delay_s": delay_s,
            "crashed": crashed,
            "charges": dict(charges),
            **({"generation": payload["generation"]} if payload else {}),
        })
        done_at = self.now + service_s + delay_s
        self._schedule(
            done_at, "complete",
            (job, worker, payload, charges, crashed, self.now),
        )

    def _run_attempt(self, job: Job):
        """Execute the data-plane call; returns (payload, seconds, charges)."""
        kind = job.spec.kind
        handle = self._graphs[job.spec.graph]
        if kind is JobKind.SOLVE:
            from ..bench.runners import run_algorithm

            tracer = Tracer()
            snapshot = handle.graph()
            result = run_algorithm(
                snapshot, "ecl-scc", self.spec,
                options=self.options, backend=self.backend,
                engine=self.engine, tracer=tracer,
            )
            service_s = float(result.model_seconds)
            counters = result.counters
            charges = {
                "model_seconds": service_s,
                "bytes": float(
                    counters.get("bytes_moved", 0)
                    + counters.get("bytes_streamed", 0)
                ),
            }
            payload = {
                "result": result,
                "generation": handle.generation,
                "profile": profile_run(result).to_dict(),
            }
            return payload, service_s, charges

        seconds_before = handle.model_seconds()
        bytes_before = (
            handle.device.counters.bytes_moved
            + handle.device.counters.bytes_streamed
        )
        if kind is JobKind.UPDATE:
            ckpt = handle.checkpoint()
            reports = handle.apply(
                deletions=job.spec.delete_edges,
                insertions=job.spec.insert_edges,
            )
            payload = {
                "reports": reports,
                "handle": handle,
                "checkpoint": ckpt,
                "generation": handle.generation,
            }
        else:  # QUERY
            result = handle.query()
            payload = {"result": result, "generation": handle.generation}
        service_s = max(handle.model_seconds() - seconds_before, 0.0)
        bytes_delta = (
            handle.device.counters.bytes_moved
            + handle.device.counters.bytes_streamed
            - bytes_before
        )
        charges = {
            "model_seconds": service_s,
            "bytes": float(max(bytes_delta, 0)),
        }
        return payload, service_s, charges

    def _on_complete(
        self, job: Job, worker, payload, charges, crashed: bool,
        dispatched_at: float,
    ) -> None:
        self.pool.release(worker, busy_s=self.now - dispatched_at)
        self._busy_graphs.discard(job.spec.graph)
        # every executed attempt is charged, crashed ones included
        self.ledger.charge(
            job.spec.tenant,
            model_seconds=charges["model_seconds"],
            bytes=charges["bytes"],
        )
        breaker = (
            self.breaker_for(job.spec.workload)
            if self.breakers_enabled else None
        )
        if not crashed:
            worker.jobs_done += 1
            if breaker is not None:
                was_open = breaker.state.value != "closed"
                breaker.record_success(self.now)
                if was_open:
                    self.metrics.incr("breaker_closed")
                    self._tr.counter("serve:breaker-closed",
                                     workload=breaker.workload)
            self.metrics.incr("completed")
            if job.spec.kind is JobKind.UPDATE:
                job.result = payload["reports"]
            else:
                job.result = payload["result"]
            self._decide(job, "complete", attempt=job.attempts,
                         service_s=charges["model_seconds"])
            job.finish(self.now, JobState.DONE)
            self._dispatch()
            return
        # crashed attempt
        worker.crashes += 1
        self.metrics.incr("crashed")
        self._decide(job, "crash", attempt=job.attempts, worker=worker.id)
        if breaker is not None:
            before = breaker.state.value
            if breaker.record_failure(self.now):
                self.metrics.incr(
                    "breaker_reopened" if before == "half-open"
                    else "breaker_opened"
                )
                self._tr.counter("serve:breaker-opened",
                                 workload=breaker.workload)
        retries_so_far = job.attempts - 1
        max_retries = self.plan.max_retries if self.plan is not None else 0
        if retries_so_far >= max_retries:
            self._dead_letter(job, "retries-exhausted")
            self._dispatch()
            return
        wait_s = backoff_seconds(self.plan, retries_so_far, rng=self._rng)
        retry_at = self.now + wait_s
        deadline = job.deadline_at(self.default_deadline_s)
        if deadline is not None and retry_at > deadline:
            self._dead_letter(job, "deadline")
            self._dispatch()
            return
        job.state = JobState.RETRY_WAIT
        self.metrics.incr("retries")
        self._decide(job, "retry-scheduled", attempt=job.attempts,
                     wait_s=wait_s)
        self._schedule(retry_at, "retry", job)
        self._dispatch()

    # ------------------------------------------------------------------
    def to_prometheus(self, *, prefix: str = "repro_serve") -> str:
        """Text exposition of the service metrics (observability.md §9)."""
        from .metrics import to_prometheus

        return to_prometheus(self.metrics, prefix=prefix)
