"""Available-parallelism profiles (the paper's §1 motivation, quantified).

The introduction argues that FB and FB-Trim "gradually build up
parallelism but start with none", which is fatal on GPUs needing 100,000s
of threads — whereas ECL-SCC treats every vertex as a pivot and is fully
parallel from round one.  These helpers make that argument measurable:

* :func:`bfs_frontier_profile` — work items (frontier edges) per BFS
  level from a pivot: the FB algorithm's parallelism over time;
* :func:`peel_profile` — vertices removable per Trim-1 round (the peel
  layers of the condensation): the trim phase's parallelism over time;
* :func:`eclscc_work_profile` — ECL-SCC's per-round active-edge counts,
  reconstructed from a run with profiling enabled.

All three return plain arrays ready for the
``benchmarks/test_ext_parallelism.py`` experiment.
"""

from __future__ import annotations

import numpy as np

from ..graph.condensation import condense, topological_levels
from ..graph.csr import CSRGraph
from ..graph.properties import bfs_levels
from ..types import VERTEX_DTYPE

__all__ = [
    "bfs_frontier_profile",
    "peel_profile",
    "parallelism_summary",
]


def bfs_frontier_profile(graph: CSRGraph, source: int) -> np.ndarray:
    """Edges expanded per BFS level from *source* (level-synchronous FB).

    ``profile[k]`` is the number of edge inspections available at level
    k — the work a GPU could parallelize during that step.
    """
    level = bfs_levels(graph, source)
    reached = level >= 0
    if not reached.any():
        return np.zeros(0, dtype=VERTEX_DTYPE)
    deg = graph.out_degree()
    depth = int(level.max()) + 1
    profile = np.zeros(depth, dtype=VERTEX_DTYPE)
    np.add.at(profile, level[reached], deg[reached])
    return profile


def peel_profile(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Vertices per topological level of the SCC condensation.

    This is the best case for iterated Trim-1: round k can remove at
    most the vertices whose component sits at depth k.  Deep meshes have
    thousands of thin levels; power-law graphs have a few huge ones.
    """
    dag, dense = condense(graph, labels)
    if dag.num_vertices == 0:
        return np.zeros(0, dtype=VERTEX_DTYPE)
    comp_level = topological_levels(dag)
    vertex_level = comp_level[dense]
    return np.bincount(vertex_level).astype(VERTEX_DTYPE)


def parallelism_summary(profile: np.ndarray, *, saturation: int = 100_000) -> "dict[str, float]":
    """Summary statistics of a work profile.

    ``saturation`` is the work needed to fill the device (the paper: GPUs
    need 100,000s of threads); ``saturated_fraction`` is the fraction of
    steps meeting it, and ``weighted_parallelism`` the work-weighted mean
    step width (the parallelism an average work item experiences).
    """
    if profile.size == 0:
        return {
            "steps": 0, "mean_width": 0.0, "max_width": 0.0,
            "saturated_fraction": 0.0, "weighted_parallelism": 0.0,
        }
    p = profile.astype(np.float64)
    total = p.sum()
    return {
        "steps": int(p.size),
        "mean_width": float(p.mean()),
        "max_width": float(p.max()),
        "saturated_fraction": float((p >= saturation).mean()),
        "weighted_parallelism": float((p * p).sum() / total) if total else 0.0,
    }
