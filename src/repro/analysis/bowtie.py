"""Bow-tie decomposition around the largest SCC.

The classic macro-structure of web-scale digraphs (Broder et al. 2000),
and the reason the power-law SCC literature the paper compares against
optimizes for one giant component: vertices split into the giant SCC
(CORE), the set that can reach it (IN), the set reachable from it (OUT),
and the disconnected remainder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.properties import bfs_reach

__all__ = ["BowTie", "bowtie_decomposition"]


@dataclass(frozen=True)
class BowTie:
    """Vertex masks of the four bow-tie regions (mutually exclusive)."""

    core: np.ndarray
    in_component: np.ndarray
    out_component: np.ndarray
    other: np.ndarray

    def fractions(self) -> "dict[str, float]":
        n = max(self.core.size, 1)
        return {
            "core": float(self.core.sum()) / n,
            "in": float(self.in_component.sum()) / n,
            "out": float(self.out_component.sum()) / n,
            "other": float(self.other.sum()) / n,
        }


def bowtie_decomposition(graph: CSRGraph, labels: np.ndarray) -> BowTie:
    """Decompose *graph* around its largest SCC given SCC *labels*."""
    labels = np.asarray(labels)
    n = graph.num_vertices
    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return BowTie(empty, empty.copy(), empty.copy(), empty.copy())
    uniq, counts = np.unique(labels, return_counts=True)
    giant = uniq[np.argmax(counts)]
    core = labels == giant
    seeds = np.flatnonzero(core)[:1]
    everywhere = np.ones(n, dtype=bool)
    fwd = bfs_reach(graph, seeds, mask=everywhere)
    bwd = bfs_reach(graph.transpose(), seeds, mask=everywhere)
    out_c = fwd & ~core
    in_c = bwd & ~core
    other = ~(core | out_c | in_c)
    return BowTie(core, in_c, out_c, other)
