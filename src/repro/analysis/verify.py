"""Label verification against reference oracles (paper §4).

The paper verifies every ECL-SCC run against Tarjan; :func:`verify_labels`
is that check.  Two labellings are *equivalent* when they induce the same
partition of the vertex set; because every algorithm in this library
normalizes labels to the maximum member ID, equivalence reduces to exact
array equality — but :func:`partitions_equal` also handles foreign
labelling conventions.
"""

from __future__ import annotations

import numpy as np

from ..baselines.tarjan import tarjan_scc
from ..errors import VerificationError
from ..graph.csr import CSRGraph

__all__ = ["partitions_equal", "verify_labels", "assert_valid_scc_labels"]


def partitions_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff labellings *a* and *b* induce the same vertex partition."""
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        return False
    if a.size == 0:
        return True
    pairs = np.unique(np.stack([a, b], axis=1), axis=0)
    return (
        pairs.shape[0] == np.unique(a).size == np.unique(b).size
    )


def verify_labels(graph: CSRGraph, labels: np.ndarray, *, oracle=None) -> None:
    """Raise :class:`VerificationError` unless *labels* match the oracle.

    The default oracle is Tarjan's algorithm, per the paper's methodology.
    """
    labels = np.asarray(labels)
    if labels.size != graph.num_vertices:
        raise VerificationError(
            f"labels has {labels.size} entries for {graph.num_vertices} vertices"
        )
    # oracles return AlgoResult; coerce to the bare label array
    truth = np.asarray((oracle or tarjan_scc)(graph))
    if not partitions_equal(labels, truth):
        bad = int(np.count_nonzero(labels != truth))
        raise VerificationError(
            f"SCC labelling disagrees with the oracle on ~{bad} vertices"
        )


def assert_valid_scc_labels(labels: np.ndarray) -> None:
    """Structural sanity: labels are the max vertex ID of their group."""
    labels = np.asarray(labels)
    n = labels.size
    if n == 0:
        return
    if labels.min() < 0 or labels.max() >= n:
        raise VerificationError("labels must be vertex IDs in [0, n)")
    # the representative of each group must be labelled by itself
    reps = np.unique(labels)
    if not np.array_equal(labels[reps], reps):
        raise VerificationError("group representatives must label themselves")
