"""Label verification against reference oracles (paper §4).

The paper verifies every ECL-SCC run against Tarjan; :func:`verify_labels`
is that check.  Two labellings are *equivalent* when they induce the same
partition of the vertex set; because every algorithm in this library
normalizes labels to the maximum member ID, equivalence reduces to exact
array equality — but :func:`partitions_equal` also handles foreign
labelling conventions.
"""

from __future__ import annotations

import numpy as np

from ..baselines.tarjan import tarjan_scc
from ..errors import VerificationError
from ..graph.csr import CSRGraph

__all__ = [
    "partitions_equal",
    "verify_labels",
    "assert_valid_scc_labels",
    "fixed_point_offenders",
]


def partitions_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff labellings *a* and *b* induce the same vertex partition."""
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        return False
    if a.size == 0:
        return True
    pairs = np.unique(np.stack([a, b], axis=1), axis=0)
    return (
        pairs.shape[0] == np.unique(a).size == np.unique(b).size
    )


def verify_labels(graph: CSRGraph, labels: np.ndarray, *, oracle=None) -> None:
    """Raise :class:`VerificationError` unless *labels* match the oracle.

    The default oracle is Tarjan's algorithm, per the paper's methodology.
    """
    labels = np.asarray(labels)
    if labels.size != graph.num_vertices:
        raise VerificationError(
            f"labels has {labels.size} entries for {graph.num_vertices} vertices"
        )
    # oracles return AlgoResult; coerce to the bare label array
    truth = np.asarray((oracle or tarjan_scc)(graph))
    if not partitions_equal(labels, truth):
        bad = int(np.count_nonzero(labels != truth))
        raise VerificationError(
            f"SCC labelling disagrees with the oracle on ~{bad} vertices"
        )


def fixed_point_offenders(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Vertices on which *labels* is not a valid SCC fixed point.

    A correct max-ID SCC labelling satisfies two invariants that can be
    checked without an oracle (this is the verification guard behind
    :func:`repro.faults.heal_labels`):

    1. every label class is strongly connected — equivalently, intra-class
       forward *and* backward max-propagation both reach the class's max
       member ID at every member, and that ID is the label;
    2. the condensation of the classes is acyclic — two classes on a
       directed cycle are really one SCC split in two.

    Vertices with out-of-range labels or whose representative does not
    label itself are treated as singleton classes and flagged directly.
    Offending vertices are reported as whole classes, and classes on a
    common condensation cycle are reported together — so the returned
    set is always a union of *complete true SCCs* and can be re-solved
    as an induced subgraph in isolation.  Returns a sorted vertex array
    (empty when the labelling verifies).
    """
    n = graph.num_vertices
    labels = np.asarray(labels)
    if labels.size != n:
        raise VerificationError(
            f"labels has {labels.size} entries for {n} vertices"
        )
    if n == 0:
        return np.empty(0, dtype=np.int64)
    lab = labels.astype(np.int64, copy=False)
    structural = np.zeros(n, dtype=bool)
    valid = (lab >= 0) & (lab < n)
    structural[valid] = lab[lab[valid]] == lab[valid]
    ids = np.arange(n, dtype=np.int64)
    key = np.where(structural, lab, n + ids)

    src, dst = graph.edges()
    intra = key[src] == key[dst]
    isrc, idst = src[intra], dst[intra]
    fwd = ids.copy()
    bwd = ids.copy()
    for _ in range(n):  # pure max-propagation: fixed point within n rounds
        nxt_f = fwd.copy()
        nxt_b = bwd.copy()
        np.maximum.at(nxt_f, idst, fwd[isrc])
        np.maximum.at(nxt_b, isrc, bwd[idst])
        if np.array_equal(nxt_f, fwd) and np.array_equal(nxt_b, bwd):
            break
        fwd, bwd = nxt_f, nxt_b
    vertex_bad = ~structural | (fwd != lab) | (bwd != lab)

    # any failing member condemns its whole class
    uniq, comp = np.unique(key, return_inverse=True)
    class_bad = np.zeros(uniq.size, dtype=bool)
    np.logical_or.at(class_bad, comp, vertex_bad)

    # condensation acyclicity: classes on a cycle are one split SCC
    inter = comp[src] != comp[dst]
    if np.any(inter):
        class_graph = CSRGraph.from_edges(
            comp[src[inter]], comp[dst[inter]], uniq.size
        )
        cond = np.asarray(tarjan_scc(class_graph))
        sizes = np.bincount(cond, minlength=uniq.size)
        class_bad |= sizes[cond] > 1

    return np.flatnonzero(class_bad[comp])


def assert_valid_scc_labels(labels: np.ndarray) -> None:
    """Structural sanity: labels are the max vertex ID of their group."""
    labels = np.asarray(labels)
    n = labels.size
    if n == 0:
        return
    if labels.min() < 0 or labels.max() >= n:
        raise VerificationError("labels must be vertex IDs in [0, n)")
    # the representative of each group must be labelled by itself
    reps = np.unique(labels)
    if not np.array_equal(labels[reps], reps):
        raise VerificationError("group representatives must label themselves")
