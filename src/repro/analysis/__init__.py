"""Analysis utilities: SCC statistics, bow-tie structure, verification."""

from .sccstats import SccStats, scc_size_histogram, scc_statistics
from .bowtie import BowTie, bowtie_decomposition
from .profiles import bfs_frontier_profile, parallelism_summary, peel_profile
from .verify import assert_valid_scc_labels, partitions_equal, verify_labels

__all__ = [
    "SccStats",
    "scc_size_histogram",
    "scc_statistics",
    "BowTie",
    "bowtie_decomposition",
    "bfs_frontier_profile",
    "parallelism_summary",
    "peel_profile",
    "assert_valid_scc_labels",
    "partitions_equal",
    "verify_labels",
]
