"""SCC statistics: the columns of Tables 1-3.

Given a graph and a per-vertex labelling, compute the component counts
the paper reports: total SCCs, size-1 and size-2 counts, largest SCC,
and the depth of the condensation DAG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.condensation import dag_depth
from ..graph.csr import CSRGraph
from ..graph.properties import degree_stats

__all__ = ["SccStats", "scc_statistics", "scc_size_histogram"]


@dataclass(frozen=True)
class SccStats:
    """One graph's row of a Table 1/2/3-style report."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_in_degree: int
    max_out_degree: int
    num_sccs: int
    size1_sccs: int
    size2_sccs: int
    largest_scc: int
    dag_depth: int

    def as_row(self) -> "dict[str, float | int]":
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_deg": round(self.avg_degree, 2),
            "max_din": self.max_in_degree,
            "max_dout": self.max_out_degree,
            "sccs": self.num_sccs,
            "size1": self.size1_sccs,
            "size2": self.size2_sccs,
            "largest": self.largest_scc,
            "dag_depth": self.dag_depth,
        }


def scc_size_histogram(labels: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """``(sizes, counts)``: how many SCCs have each size."""
    _, comp_sizes = np.unique(np.asarray(labels), return_counts=True)
    sizes, counts = np.unique(comp_sizes, return_counts=True)
    return sizes, counts


def scc_statistics(graph: CSRGraph, labels: np.ndarray, *, with_depth: bool = True) -> SccStats:
    """Compute the full statistics row for *graph* under *labels*.

    ``with_depth=False`` skips the condensation DAG depth (the expensive
    part on huge graphs) and reports 0.
    """
    deg = degree_stats(graph)
    _, comp_sizes = np.unique(np.asarray(labels), return_counts=True)
    return SccStats(
        num_vertices=deg.num_vertices,
        num_edges=deg.num_edges,
        avg_degree=deg.avg_degree,
        max_in_degree=deg.max_in_degree,
        max_out_degree=deg.max_out_degree,
        num_sccs=int(comp_sizes.size),
        size1_sccs=int(np.count_nonzero(comp_sizes == 1)),
        size2_sccs=int(np.count_nonzero(comp_sizes == 2)),
        largest_scc=int(comp_sizes.max(initial=0)),
        dag_depth=dag_depth(graph, labels) if with_depth else 0,
    )
