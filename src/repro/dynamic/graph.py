"""Incremental SCC maintenance over a mutable graph: :class:`DynamicGraph`.

Every query against a :class:`~repro.graph.csr.CSRGraph` is a cold full
re-solve; serving scenarios are dominated by updates and queries against
a slowly mutating graph.  ``DynamicGraph`` is the mutable handle: it
accepts batched edge insertions and deletions and maintains the
per-vertex SCC labels incrementally, so :meth:`query` is a read, not a
solve.

Maintenance strategy (Sa, *Maintenance of Strongly Connected Components
in Shared-memory Graph*; Hong et al., *Static and Incremental Graph
Connectivity on GPUs* — PAPERS.md):

* **Deletions only split.**  A removed inter-component edge cannot
  change any SCC; it only decrements a multiplicity in the cached
  condensation.  A removed intra-component edge ``(u, v)`` *may* split
  its component — but a dense SCC rarely hinges on one edge, so the
  handle first runs a targeted ``u -> v`` reachability probe inside the
  component's surviving subgraph (every replacement path must stay
  inside the old component: the old SCC was maximal and deletion adds
  no paths).  Only when a probe fails does it re-solve the affected
  components, seeding the frontier Phase-2 engine
  (:mod:`repro.core.propagation`) from exactly the invalidated vertex
  set — PR 4's cross-iteration reuse generalized across *queries*.
* **Insertions only merge.**  An intra-component edge is a label no-op.
  Inter-component edges are lifted into the cached condensation DAG;
  any newly-created cycle lies inside the *affected reachability
  cluster* (condensation vertices forward-reachable from an inserted
  head and backward-reachable from an inserted tail — the backward
  pass runs restricted to the forward closure, which is exact because
  every backward path from a forward-reachable vertex stays forward-
  reachable), so only that cluster is re-solved, and the resulting
  groups are merged through a :class:`~repro.dynamic.unionfind.UnionFind`
  whose roots carry the max label — merged labels stay the max vertex
  ID of the union.

Labels are therefore **bit-identical to a cold solve** of the current
graph after every applied batch: the max-member labelling is canonical,
splits re-derive it exactly on the affected components, and merges take
maxima of maxima.

All internal traversals are modelled as *persistent* worklist kernels
(one launch, in-kernel rounds) — the paper's §3.4 launch-overhead
argument applies with extra force to updates, whose subproblems are
tiny.  Every update kernel is device-accounted through
:mod:`repro.engine.accounting` (``charge_update_insert`` /
``charge_update_delete`` / ``charge_label_rewrite`` /
``charge_condensation_build``) and lands in the PR 5 launch ledger
under ``dynamic-*`` spans, so ``repro profile`` can attribute update
cost and :mod:`repro.dynamic.replay` can show the
incremental-vs-recompute crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.eclscc import ecl_scc
from ..core.options import ALL_ON, EclOptions, engine_options
from ..device.counters import KernelCounters
from ..device.executor import VirtualDevice
from ..device.spec import A100, DeviceSpec
from ..engine import get_backend
from ..engine.accounting import (
    STATUS_FLAG_BYTES,
    charge_condensation_build,
    charge_degree_pass,
    charge_frontier_launch,
    charge_frontier_round,
    charge_label_rewrite,
    charge_update_delete,
    charge_update_insert,
    charge_vertex_scan,
)
from ..errors import GraphFormatError, GraphValidationError
from ..faults.plan import FaultPlan
from ..graph.csr import CSRGraph
from ..profile.ledger import attach_ledger
from ..results import AlgoResult, count_sccs
from ..trace import Tracer, ensure_tracer
from ..types import VERTEX_DTYPE, as_vertex_array
from .unionfind import UnionFind

__all__ = ["DynamicGraph", "UpdateReport", "DynamicCheckpoint"]

#: Intra-component deletions per batch above which the split check
#: switches from per-edge replacement-path probes to one whole-component
#: forward+backward sweep.  A probe usually terminates after a few
#: rounds (hub-dense SCCs have short replacement paths) but costs up to
#: one component volume when it must exhaust the component; the sweep
#: costs exactly two volumes regardless of batch size — so point probes
#: win for sparse batches and the sweep amortizes dense ones.
PROBE_LIMIT = 4


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one applied mutation batch.

    ``model_seconds`` is the *incremental* device cost of the batch —
    the delta of the handle's cost-model estimate across the update —
    which the replay harness compares against the cost of a cold
    re-solve of the post-batch graph (the crossover measurement).
    """

    op: str                    # "insert" | "delete"
    generation: int            # handle generation after this batch
    requested: int             # batch size as given
    inserted: int = 0
    deleted: int = 0
    invalidated: int = 0       # vertices re-seeded into the frontier engine
    resolve_vertices: int = 0  # size of the bounded re-solve subproblem
    resolve_edges: int = 0
    merged_components: int = 0
    split_components: int = 0
    labels_changed: int = 0
    model_seconds: float = 0.0


@dataclass
class DynamicCheckpoint:
    """Frozen :class:`DynamicGraph` state (edges, labels, accounting).

    Mirrors :class:`repro.faults.recovery.Checkpoint`: the counter copy
    is taken with the snapshot, and :meth:`DynamicGraph.restore`
    truncates the launch ledger to ``ledger_len``, so a restored handle
    reproduces the checkpointed run's counters and profile attribution
    bit for bit.
    """

    generation: int
    src: np.ndarray
    dst: np.ndarray
    labels: np.ndarray
    counters: KernelCounters
    ledger_len: int
    history_len: int

    @property
    def nbytes(self) -> int:
        return self.src.nbytes + self.dst.nbytes + self.labels.nbytes


def _copy_counters(counters: KernelCounters) -> KernelCounters:
    return replace(counters, notes=dict(counters.notes))


class _CondCache:
    """The cached condensation DAG with per-edge multiplicities.

    ``dense[v]`` is the condensation vertex of original vertex ``v``,
    ``comp_labels[c]`` the SCC label of component ``c``, and
    ``keys``/``counts`` the sorted inter-component edge multiset
    (``key = csrc * k + cdst``) — the multiplicities are what let the
    cache *survive deletions*: removing an inter-component edge just
    decrements its count, and the DAG edge disappears only when the
    last resident instance does.  Without counts every deletion would
    force an O(|E|) rebuild, which is exactly the cost class an
    incremental engine exists to avoid.
    """

    __slots__ = ("dense", "comp_labels", "keys", "counts", "_dag")

    def __init__(
        self,
        dense: np.ndarray,
        comp_labels: np.ndarray,
        keys: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        self.dense = dense
        self.comp_labels = comp_labels
        self.keys = keys
        self.counts = counts
        self._dag: "CSRGraph | None" = None

    @property
    def num_components(self) -> int:
        return self.comp_labels.size

    @property
    def dag(self) -> CSRGraph:
        if self._dag is None:
            k = self.num_components
            self._dag = CSRGraph.from_edges(
                self.keys // max(k, 1), self.keys % max(k, 1), k
            )
        return self._dag

    def add_pairs(self, csrc: np.ndarray, cdst: np.ndarray) -> None:
        """Record inserted inter-component edges (increment counts)."""
        k = self.num_components
        new = csrc.astype(np.int64) * k + cdst
        uniq, cnt = np.unique(new, return_counts=True)
        pos = np.searchsorted(self.keys, uniq)
        hit = (pos < self.keys.size) & (self.keys[np.minimum(pos, self.keys.size - 1)] == uniq) if self.keys.size else np.zeros(uniq.size, dtype=bool)
        self.counts[pos[hit]] += cnt[hit]
        if not hit.all():
            self.keys = np.insert(self.keys, pos[~hit], uniq[~hit])
            self.counts = np.insert(self.counts, pos[~hit], cnt[~hit])
            self._dag = None

    def remove_pairs(self, csrc: np.ndarray, cdst: np.ndarray) -> None:
        """Record deleted inter-component edges (decrement counts)."""
        k = self.num_components
        gone = csrc.astype(np.int64) * k + cdst
        uniq, cnt = np.unique(gone, return_counts=True)
        pos = np.searchsorted(self.keys, uniq)
        self.counts[pos] -= cnt
        if (self.counts == 0).any():
            keep = self.counts > 0
            self.keys = self.keys[keep]
            self.counts = self.counts[keep]
            self._dag = None

    def contract(self, roots: np.ndarray, comp_map: np.ndarray) -> "_CondCache":
        """Cache after union-find merges (``roots`` per old component,
        ``comp_map`` old -> new compacted component IDs)."""
        k = self.num_components
        k2 = int(comp_map.max()) + 1 if comp_map.size else 0
        comp_labels = np.zeros(k2, dtype=VERTEX_DTYPE)
        comp_labels[comp_map] = self.comp_labels[roots]
        mcs = comp_map[self.keys // max(k, 1)]
        mcd = comp_map[self.keys % max(k, 1)]
        keep = mcs != mcd
        new_keys = mcs[keep].astype(np.int64) * k2 + mcd[keep]
        uniq, inverse = np.unique(new_keys, return_inverse=True)
        counts = np.zeros(uniq.size, dtype=np.int64)
        np.add.at(counts, inverse, self.counts[keep])
        return _CondCache(comp_map[self.dense], comp_labels, uniq, counts)


class DynamicGraph:
    """Mutable graph handle maintaining SCC labels incrementally.

    Parameters
    ----------
    graph:
        initial :class:`~repro.graph.csr.CSRGraph` (solved cold once,
        unless *labels* supplies a known-correct labelling).
    options:
        base :class:`~repro.core.options.EclOptions` for the internal
        re-solves; defaults to all optimizations on.
    engine:
        Phase-2 engine of the internal re-solves, validated against the
        engine registry.  Defaults to ``"frontier"`` — deletions seed
        the frontier engine from the invalidated set, which is the
        point of the incremental design.  ``"adaptive"`` layers the
        per-round policy scheduler on top of the same seeding (each
        re-solve gets a fresh scheduler, so update subproblems decide
        independently).
    device:
        persistent :class:`~repro.device.VirtualDevice` (or a
        :class:`~repro.device.DeviceSpec`, wrapped) that accumulates
        every update's charges across the handle's lifetime.
    backend:
        :class:`~repro.engine.ArrayBackend` (or name) the update
        kernels and re-solves account against.
    tracer:
        optional :class:`~repro.trace.Tracer`; updates record
        ``dynamic-insert`` / ``dynamic-delete`` / ``dynamic-query``
        spans with the internal re-solves nested inside, and the
        launch ledger attributes every update kernel to them.
    faults:
        optional :class:`~repro.faults.FaultPlan` injected into every
        internal re-solve (monotone plans keep labels bit-identical;
        see ``docs/robustness.md``).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        options: "EclOptions | None" = None,
        engine: "str | None" = None,
        device: "VirtualDevice | DeviceSpec | None" = None,
        backend: "str | None" = None,
        tracer: "Tracer | None" = None,
        faults: "FaultPlan | None" = None,
        labels: "np.ndarray | None" = None,
    ) -> None:
        if device is None:
            device = VirtualDevice(A100)
        elif isinstance(device, DeviceSpec):
            device = VirtualDevice(device)
        self._device = device
        self._tr = ensure_tracer(tracer)
        attach_ledger(self._device, self._tr)
        base = options or ALL_ON
        self._opts = engine_options(engine or "frontier", replace(base, faults=None))
        self._backend = get_backend(backend if backend is not None else base.backend)
        self._faults = faults
        self._n = graph.num_vertices
        src, dst = graph.edges()
        self._src = src.copy()
        self._dst = dst.copy()
        self._name = graph.name or "dynamic"
        self.generation = 0
        self.history: "list[UpdateReport]" = []
        self._cond: "_CondCache | None" = None
        if labels is not None:
            labels = as_vertex_array(labels, "labels")
            if labels.size != self._n:
                raise GraphValidationError(
                    f"labels must have one entry per vertex ({self._n}),"
                    f" got {labels.size}"
                )
            self.labels = labels.copy()
        else:
            with self._tr.span("dynamic-cold-solve"):
                res = ecl_scc(
                    graph, options=self._opts, device=self._device,
                    backend=self._backend, tracer=self._tr, faults=faults,
                )
            self.labels = res.labels

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._src.size

    @property
    def num_sccs(self) -> int:
        return count_sccs(self.labels)

    @property
    def device(self) -> VirtualDevice:
        return self._device

    @property
    def options(self) -> EclOptions:
        """Options of the internal re-solves (engine already folded in)."""
        return self._opts

    def graph(self) -> CSRGraph:
        """Immutable snapshot of the current graph."""
        return CSRGraph.from_edges(
            self._src, self._dst, self._n, name=self._name
        )

    def model_seconds(self) -> float:
        """Cost-model estimate of all work charged to the handle so far."""
        return self._device.estimate(self._n, self._src.size).total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DynamicGraph {self._name!r} |V|={self._n}"
            f" |E|={self._src.size} sccs={self.num_sccs}"
            f" gen={self.generation}>"
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self) -> AlgoResult:
        """Current SCC labelling — a label read-out, not a re-solve.

        The static special case: ``DynamicGraph(g).query()`` equals
        ``repro.solve(g)``'s labels, and stays equal after any applied
        batches to a cold solve of the then-current graph.
        """
        with self._tr.span("dynamic-query"):
            # one label copy-out kernel (the read a serving layer pays)
            charge_vertex_scan(
                self._device, self._backend,
                num_vertices=self._n, worklist_size=self._n,
                bytes_per_vertex=STATUS_FLAG_BYTES,
            )
        return AlgoResult(
            labels=self.labels.copy(),
            num_sccs=self.num_sccs,
            device=self._device,
            trace=self._tr.trace if self._tr.enabled else None,
        )

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_vertices(self, count: int) -> np.ndarray:
        """Append *count* isolated vertices; returns their new IDs."""
        if count < 0:
            raise GraphFormatError(f"count must be >= 0, got {count}")
        new_ids = np.arange(self._n, self._n + count, dtype=VERTEX_DTYPE)
        if count:
            # an isolated vertex is its own SCC labelled by itself
            self.labels = np.concatenate([self.labels, new_ids])
            self._n += count
            self._cond = None
        return new_ids

    def insert_edges(self, src, dst) -> UpdateReport:
        """Apply one batch of edge insertions; labels merge as needed."""
        s, d = self._batch_arrays(src, dst)
        before = self.model_seconds()
        merged = changed = resolve_v = resolve_e = 0
        with self._tr.span("dynamic-insert", batch=int(s.size)) as sp:
            charge_update_insert(self._device, batch=int(s.size))
            inter = self.labels[s] != self.labels[d]
            if inter.any():
                # build the cache from the *pre-insert* edges: add_pairs
                # must be the only accounting of the new batch, or a
                # first-time build would count it twice and a later
                # deletion would leave a stale DAG edge behind
                self._condensation()
            self._src = np.concatenate([self._src, s])
            self._dst = np.concatenate([self._dst, d])
            if inter.any():
                merged, changed, resolve_v, resolve_e = self._merge_inserted(
                    s[inter], d[inter]
                )
            sp.set(merged=merged, labels_changed=changed)
        self.generation += 1
        report = UpdateReport(
            op="insert",
            generation=self.generation,
            requested=int(s.size),
            inserted=int(s.size),
            resolve_vertices=resolve_v,
            resolve_edges=resolve_e,
            merged_components=merged,
            labels_changed=changed,
            model_seconds=self.model_seconds() - before,
        )
        self.history.append(report)
        return report

    def delete_edges(self, src, dst) -> UpdateReport:
        """Apply one batch of edge deletions; labels split as needed.

        Multiset semantics: each requested ``(u, v)`` pair removes one
        resident instance; a pair with no remaining instance raises
        :class:`~repro.errors.GraphValidationError`.
        """
        s, d = self._batch_arrays(src, dst)
        before = self.model_seconds()
        split = changed = resolve_v = resolve_e = invalidated = 0
        with self._tr.span("dynamic-delete", batch=int(s.size)) as sp:
            removed_s, removed_d = self._remove_batch(s, d)
            inter = self.labels[removed_s] != self.labels[removed_d]
            if self._cond is not None and inter.any():
                # inter-component deletions never change labels; the
                # cached DAG just loses multiplicity
                charge_degree_pass(
                    self._device, edges=int(np.count_nonzero(inter))
                )
                self._cond.remove_pairs(
                    self._cond.dense[removed_s[inter]],
                    self._cond.dense[removed_d[inter]],
                )
            # only an intra-component edge loss can lower a fixed point;
            # a lost self-loop never can (the vertex still reaches itself)
            intra = ~inter & (removed_s != removed_d)
            if intra.any():
                affected = np.unique(self.labels[removed_s[intra]])
                invalidated_mask = np.isin(self.labels, affected)
                split, changed, resolve_v, resolve_e = self._resolve_invalidated(
                    invalidated_mask,
                    affected.size,
                    removed_s[intra],
                    removed_d[intra],
                )
                invalidated = int(np.count_nonzero(invalidated_mask))
            sp.set(split=split, labels_changed=changed)
        self.generation += 1
        report = UpdateReport(
            op="delete",
            generation=self.generation,
            requested=int(s.size),
            deleted=int(s.size),
            invalidated=invalidated,
            resolve_vertices=resolve_v,
            resolve_edges=resolve_e,
            split_components=split,
            labels_changed=changed,
            model_seconds=self.model_seconds() - before,
        )
        self.history.append(report)
        return report

    def apply(
        self,
        *,
        deletions: "tuple | None" = None,
        insertions: "tuple | None" = None,
    ) -> "list[UpdateReport]":
        """Apply one combined batch: deletions first, then insertions.

        The final graph is ``(E \\ deletions) | insertions``; sequential
        composition keeps each phase exact, so labels match a cold solve
        of the final graph.
        """
        reports = []
        if deletions is not None:
            reports.append(self.delete_edges(*deletions))
        if insertions is not None:
            reports.append(self.insert_edges(*insertions))
        return reports

    # ------------------------------------------------------------------
    # checkpoint / restore (repro.faults integration)
    # ------------------------------------------------------------------
    def checkpoint(self) -> DynamicCheckpoint:
        """Snapshot the dynamic state (edges, labels, counters, ledger)."""
        ledger = getattr(self._device, "ledger", None)
        return DynamicCheckpoint(
            generation=self.generation,
            src=self._src.copy(),
            dst=self._dst.copy(),
            labels=self.labels.copy(),
            counters=_copy_counters(self._device.counters),
            ledger_len=len(ledger.records) if ledger is not None else 0,
            history_len=len(self.history),
        )

    def restore(self, ckpt: DynamicCheckpoint) -> None:
        """Roll the handle back to *ckpt* (counter-bit-identical).

        The restore itself is charged to ``counters.notes`` (excluded
        from snapshots by design, as in
        :class:`repro.faults.recovery.CheckpointStore`), so re-executing
        the rolled-back updates recharges the exact same sequence.
        """
        self._src = ckpt.src.copy()
        self._dst = ckpt.dst.copy()
        self.labels = ckpt.labels.copy()
        self.generation = ckpt.generation
        del self.history[ckpt.history_len:]
        self._cond = None
        self._device.counters = _copy_counters(ckpt.counters)
        ledger = getattr(self._device, "ledger", None)
        if ledger is not None:
            del ledger.records[ckpt.ledger_len:]
        self._device.note("dynamic_restore_bytes", ckpt.nbytes)
        self._tr.counter("recovery:dynamic-restore", generation=ckpt.generation)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _batch_arrays(self, src, dst) -> "tuple[np.ndarray, np.ndarray]":
        s = as_vertex_array(src, "src")
        d = as_vertex_array(dst, "dst")
        if s.shape != d.shape:
            raise GraphFormatError(
                f"src and dst must have equal length, got {s.size} and {d.size}"
            )
        if s.size:
            lo = min(int(s.min()), int(d.min()))
            hi = max(int(s.max()), int(d.max()))
            if lo < 0 or hi >= self._n:
                raise GraphFormatError(
                    f"edge endpoints must lie in [0, {self._n}),"
                    f" found range [{lo}, {hi}]"
                )
        return s, d

    def _remove_batch(
        self, s: np.ndarray, d: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Remove one resident instance per requested pair (strict).

        Modelled as per-deletion adjacency probes (one warp scans the
        source's adjacency list and tombstones the match), so the charge
        is proportional to the probed volume, not the resident edge
        count — batches must not pay O(|E|).
        """
        n = max(self._n, 1)
        resident = self._src.astype(np.int64) * n + self._dst
        requested = s.astype(np.int64) * n + d
        order = np.argsort(resident, kind="stable")
        sorted_keys = resident[order]
        uniq, counts = np.unique(requested, return_counts=True)
        left = np.searchsorted(sorted_keys, uniq, side="left")
        right = np.searchsorted(sorted_keys, uniq, side="right")
        short = (right - left) < counts
        if short.any():
            missing = int(uniq[short][0])
            raise GraphValidationError(
                f"cannot delete edge ({missing // n} -> {missing % n}):"
                " fewer resident instances than requested"
            )
        probed = int(np.count_nonzero(np.isin(self._src, s)))
        charge_update_delete(
            self._device, probed=probed, requested=int(s.size),
        )
        # the k-th duplicate request claims the k-th resident instance
        offsets = np.repeat(left, counts) + _ragged_arange(counts)
        remove_idx = order[offsets]
        removed_s = self._src[remove_idx].copy()
        removed_d = self._dst[remove_idx].copy()
        keep = np.ones(self._src.size, dtype=bool)
        keep[remove_idx] = False
        self._src = self._src[keep]
        self._dst = self._dst[keep]
        return removed_s, removed_d

    def _condensation(self) -> _CondCache:
        """The cached condensation (built lazily, updated incrementally).

        The build is one edge-centric pass over the resident edges
        (charged); afterwards insertions/deletions keep it current by
        multiplicity bookkeeping and merge contraction, so steady-state
        batches never pay the O(|E|) rebuild again.
        """
        if self._cond is None:
            with self._tr.span("dynamic-condense", edges=self.num_edges):
                charge_condensation_build(self._device, edges=self.num_edges)
                from ..graph.condensation import compact_labels

                dense = compact_labels(self.labels)
                k = int(dense.max()) + 1 if dense.size else 0
                comp_labels = np.zeros(k, dtype=VERTEX_DTYPE)
                comp_labels[dense] = self.labels
                csrc, cdst = dense[self._src], dense[self._dst]
                inter = csrc != cdst
                keys, counts = np.unique(
                    csrc[inter].astype(np.int64) * k + cdst[inter],
                    return_counts=True,
                )
            self._cond = _CondCache(dense, comp_labels, keys, counts)
        return self._cond

    def _persistent_reach(
        self,
        graph: CSRGraph,
        sources: np.ndarray,
        *,
        active: "np.ndarray | None" = None,
        target: "int | None" = None,
    ) -> "np.ndarray | bool":
        """Worklist reachability closure, persistent-kernel accounting.

        One launch; each BFS level is an in-kernel round (the frontier
        engine's cost discipline — update subproblems are tiny, so
        per-level launches would drown them in launch overhead).  With
        *target* set, returns True/False as soon as the target is
        reached (early exit); otherwise returns the visited mask.
        ``active`` restricts the traversal (expanded edges into
        inactive vertices are still inspected, matching masked_bfs).
        """
        n = graph.num_vertices
        visited = np.zeros(n, dtype=bool)
        frontier = np.unique(sources)
        if active is not None:
            frontier = frontier[active[frontier]]
        visited[frontier] = True
        # the grid never needs more blocks than the worklist can fill:
        # update subproblems are far smaller than the device's resident
        # capacity, and block dispatch is a costed resource
        blocks = min(
            self._device.grid_blocks(persistent=True),
            max(1, -(-n // 512)),
        )
        charge_frontier_launch(self._device, blocks=blocks)
        if target is not None and visited[target]:
            return True
        indptr, indices = graph.indptr, graph.indices
        while frontier.size:
            expanded = int(
                (indptr[frontier + 1] - indptr[frontier]).sum()
            )
            neighbors = _gather_neighbors(indptr, indices, frontier)
            mask = ~visited[neighbors]
            if active is not None:
                mask &= active[neighbors]
            new = np.unique(neighbors[mask])
            visited[new] = True
            charge_frontier_round(
                self._device,
                edges=expanded,
                frontier_size=int(frontier.size),
                enqueues=int(new.size),
            )
            self._tr.counter("dynamic:reach-round", frontier=int(frontier.size))
            if target is not None and visited[target]:
                return True
            frontier = new
        return False if target is not None else visited

    def _merge_inserted(
        self, s: np.ndarray, d: np.ndarray
    ) -> "tuple[int, int, int, int]":
        """Merge labels for inter-component inserted edges.

        Returns ``(merged_components, labels_changed, resolve_vertices,
        resolve_edges)``.
        """
        cache = self._condensation()
        k = cache.num_components
        cs, cd = cache.dense[s], cache.dense[d]
        cache.add_pairs(cs, cd)
        lifted = cache.dag
        # any new cycle lies inside the affected reachability cluster:
        # forward from the inserted heads, backward from the inserted
        # tails *within the forward closure* (exact: a backward path
        # from a forward-reachable vertex stays forward-reachable)
        fwd = self._persistent_reach(lifted, cd)
        back_sources = cs[fwd[cs]]
        if not back_sources.size:
            return 0, 0, 0, 0
        bwd = self._persistent_reach(
            lifted.transpose(), back_sources, active=fwd
        )
        affected = fwd & bwd
        if not affected.any():
            return 0, 0, 0, 0
        cluster = np.flatnonzero(affected)
        new_id = np.full(k, -1, dtype=VERTEX_DTYPE)
        new_id[cluster] = np.arange(cluster.size, dtype=VERTEX_DTYPE)
        # gather the cluster's adjacency (charge: cluster volume, the
        # DAG edges inspected — never the full DAG edge list)
        indptr, indices = lifted.indptr, lifted.indices
        degrees = indptr[cluster + 1] - indptr[cluster]
        heads = _gather_neighbors(indptr, indices, cluster)
        tails = np.repeat(cluster, degrees)
        keep = affected[heads]
        charge_degree_pass(self._device, edges=int(heads.size))
        sub = CSRGraph.from_edges(
            new_id[tails[keep]], new_id[heads[keep]], cluster.size,
        )
        res = ecl_scc(
            sub, options=self._opts, device=self._device,
            backend=self._backend, tracer=self._tr, faults=self._faults,
        )
        # union-find over the condensation: comps sharing a local SCC
        # merge, the max-label member rooting each set
        uf = UnionFind(cache.comp_labels)
        local = res.labels
        order = np.argsort(local, kind="stable")
        groups, starts = np.unique(local[order], return_index=True)
        bounds = np.append(starts, local.size)
        for gi in np.flatnonzero(np.diff(bounds) > 1):
            members = cluster[order[bounds[gi]:bounds[gi + 1]]]
            for m in members[1:]:
                uf.union(int(members[0]), int(m))
        if not uf.merges:
            return 0, 0, int(cluster.size), int(sub.num_edges)
        roots = uf.roots()
        new_comp_labels = cache.comp_labels[roots]
        changed_comps = np.flatnonzero(new_comp_labels != cache.comp_labels)
        mask = np.isin(cache.dense, changed_comps)
        touched = int(np.count_nonzero(mask))
        self.labels[mask] = new_comp_labels[cache.dense[mask]]
        charge_label_rewrite(
            self._device, self._backend,
            num_vertices=self._n, touched=touched,
        )
        # contract the merged components in the cached condensation
        # (O(dag edges), not O(resident edges))
        charge_condensation_build(self._device, edges=int(lifted.num_edges))
        from ..graph.condensation import compact_labels

        comp_map = compact_labels(roots)
        self._cond = cache.contract(roots, comp_map)
        return int(uf.merges), touched, int(cluster.size), int(sub.num_edges)

    def _resolve_invalidated(
        self,
        mask: np.ndarray,
        affected_components: int,
        del_src: np.ndarray,
        del_dst: np.ndarray,
    ) -> "tuple[int, int, int, int]":
        """Handle intra-component deletions (the only splitting case).

        Builds the induced subgraph of the affected components (charge
        proportional to their volume, not |E|), then probes each
        deleted edge ``(u, v)`` for a surviving ``u -> v`` replacement
        path.  If every probe succeeds the components are still
        strongly connected — any old witness path re-routes through
        replacement paths, all inside the old component — and labels
        are untouched.  Otherwise the components re-solve with the
        frontier Phase-2 engine seeded from exactly the invalidated
        vertex set (the induced subgraph's iteration-1 invalidation set
        *is* the invalidated set, persisted across queries by the
        maintained labels).  Returns ``(split_components,
        labels_changed, resolve_vertices, resolve_edges)``.
        """
        ids = np.flatnonzero(mask)
        new_id = np.full(self._n, -1, dtype=VERTEX_DTYPE)
        new_id[ids] = np.arange(ids.size, dtype=VERTEX_DTYPE)
        # only same-component edges can witness the surviving cycles;
        # cross-component edges cannot re-merge (they never could).
        # The gather streams the affected components' adjacency volume.
        keep = (
            mask[self._src]
            & mask[self._dst]
            & (self.labels[self._src] == self.labels[self._dst])
        )
        volume = int(np.count_nonzero(mask[self._src]))
        charge_degree_pass(self._device, edges=volume)
        sub = CSRGraph.from_edges(
            new_id[self._src[keep]], new_id[self._dst[keep]], ids.size,
        )
        if del_src.size <= PROBE_LIMIT:
            intact = all(
                self._persistent_reach(
                    sub, new_id[u:u + 1], target=int(new_id[v])
                )
                for u, v in zip(del_src, del_dst)
            )
        else:
            # dense batch: sweep every affected component once from one
            # representative — full forward and backward coverage means
            # every component is still strongly connected (kept edges
            # never cross components, so coverage cannot leak)
            _, reps = np.unique(self.labels[ids], return_index=True)
            intact = bool(self._persistent_reach(sub, reps).all())
            if intact:
                intact = bool(
                    self._persistent_reach(sub.transpose(), reps).all()
                )
        if intact:
            self._tr.counter("dynamic:delete-intact", value=del_src.size)
            return 0, 0, int(ids.size), int(sub.num_edges)
        res = ecl_scc(
            sub, options=self._opts, device=self._device,
            backend=self._backend, tracer=self._tr, faults=self._faults,
        )
        # ids is ascending, so the local max member maps to the
        # original max member: the canonical max-label convention holds
        new_labels = ids[res.labels]
        changed = int(np.count_nonzero(new_labels != self.labels[ids]))
        self.labels[ids] = new_labels
        charge_label_rewrite(
            self._device, self._backend,
            num_vertices=self._n, touched=int(ids.size),
        )
        self._cond = None  # components split: the mapping itself changed
        split = int(res.num_sccs) - int(affected_components)
        return max(split, 0), changed, int(ids.size), int(sub.num_edges)


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All out-neighbors of *frontier* (with multiplicity)."""
    starts = indptr[frontier]
    degrees = indptr[frontier + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    offsets = np.repeat(starts, degrees) + _ragged_arange(degrees)
    return indices[offsets]


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(c)`` for each c in *counts*."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ids = np.arange(total, dtype=np.int64)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return ids - resets
