"""Array-based union-find over condensation components.

The dynamic engine merges SCC labels after an insertion batch by
unioning the old components that fall into one new component of the
affected-cluster re-solve (see :mod:`repro.dynamic.graph`).  The
structure is deliberately minimal: path-halving finds, union by the
*label* order — the representative of a merged set is always the member
with the maximum SCC label, so the merged set's label is readable
directly off the root (labels are max-member vertex IDs, and the max of
maxes over a union is the union's max).
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Union-find over ``0..n-1`` keyed by a per-element label priority.

    ``union(a, b)`` roots the set at whichever element carries the
    larger ``labels`` value, so ``label_of(x) == labels[find(x)]`` is
    the maximum label over x's set at all times.
    """

    def __init__(self, labels: np.ndarray) -> None:
        self.labels = np.asarray(labels, dtype=np.int64)
        self.parent = np.arange(self.labels.size, dtype=np.int64)
        self.merges = 0

    def find(self, x: int) -> int:
        parent = self.parent
        root = int(x)
        while parent[root] != root:
            parent[root] = parent[parent[root]]  # path halving
            root = int(parent[root])
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        # the larger label wins the root, keeping label_of() a max
        if self.labels[ra] < self.labels[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.merges += 1
        return True

    def label_of(self, x: int) -> int:
        """Maximum label over x's current set."""
        return int(self.labels[self.find(x)])

    def roots(self) -> np.ndarray:
        """Fully-compressed root of every element (vectorized)."""
        parent = self.parent
        while True:
            jumped = parent[parent]
            if np.array_equal(jumped, parent):
                self.parent = parent
                return parent
            parent = jumped
