"""Incremental SCC maintenance for dynamic graphs.

The static pipeline answers "what are the SCCs of this snapshot?";
this subpackage answers the serving question — "keep the SCCs correct
while the graph mutates":

* :class:`DynamicGraph` — the mutable handle: batched
  :meth:`~DynamicGraph.insert_edges` / :meth:`~DynamicGraph.delete_edges`
  maintain per-vertex labels *incrementally* (deletions re-seed the
  frontier Phase-2 engine from the invalidated components, insertions
  merge through a union-find over the cached condensation DAG), with
  every update kernel device-accounted and ledger-attributed.  Labels
  stay bit-identical to a cold solve of the current graph after every
  batch.
* :class:`UpdateReport` / :class:`DynamicCheckpoint` — per-batch cost
  attribution and fault-tolerant state snapshots.
* :class:`EdgeLog` / :func:`generate_edge_log` / :func:`replay` — the
  streaming workload: a deterministic timestamped edge-event log
  replayed in batches, measuring the incremental-vs-recompute
  crossover (``repro dynamic``, ``repro bench smoke``).

See ``docs/dynamic.md``.
"""

from .graph import DynamicCheckpoint, DynamicGraph, UpdateReport
from .replay import BatchStats, EdgeLog, ReplayResult, generate_edge_log, replay
from .unionfind import UnionFind

__all__ = [
    "DynamicGraph",
    "UpdateReport",
    "DynamicCheckpoint",
    "UnionFind",
    "EdgeLog",
    "generate_edge_log",
    "replay",
    "BatchStats",
    "ReplayResult",
]
